"""Concurrent /damage load on the analysis service, both front-ends.

The service exists to turn many small concurrent fault queries into few
lane-packed kernel sweeps (PR 5's coalescer) and, since the sharded
worker tier, to spread those sweeps across CPU cores.  This benchmark
records what a client actually experiences under that load:

1. **parity first** — every response under load is compared against a
   direct in-process :class:`GraphDamageAnalysis` damage vector; a
   single diverging float aborts the benchmark before any timing is
   recorded;
2. **threaded/in-process** — the PR 5 stack: ``ThreadingHTTPServer``
   front-end, coalesced batches solved on the dispatcher thread in the
   server process;
3. **sharded/async** — the asyncio front-end dispatching coalesced
   batches to worker processes over shared-memory-shipped IR.

Per design and stack: p50/p99 request latency, throughput, batch
occupancy (requests per kernel dispatch), and the peak per-shard queue
depth sampled during the run.  On a single-core container the sharded
stack's advantage is bounded by the lack of parallel hardware — the
recorded ``cpus`` field is how a reader (and the regression gate)
contextualizes the numbers; the >= 2x acceptance point is expected on
multi-core runners.

Run as a script to (re)write the baseline consumed by ``bench-diff``::

    PYTHONPATH=src python benchmarks/bench_service_load.py \
        --output results/BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis import GraphDamageAnalysis
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.rsn.primitives import NodeKind
from repro.service import (
    AnalysisService,
    AsyncServerThread,
    ServiceClient,
    make_server,
)
from repro.spec import spec_for_network

#: Designs under load: a SIB tree and an MBIST-style access network —
#: both from the benchmark registry, so the regression gate can rebuild
#: them by name.
DESIGN_NAMES = ["TreeUnbalanced", "MBIST_2_5_5"]

DEFAULT_REQUESTS = 1000
DEFAULT_CONCURRENCY = 64
_PLAN_SEED = 20260808


def _counts(network):
    segments = muxes = 0
    for node in network.nodes():
        if node.kind == NodeKind.SEGMENT:
            segments += 1
        elif node.kind == NodeKind.MUX:
            muxes += 1
    return segments, muxes


def _percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def _parse_histogram_mean(metrics_text, name):
    """Mean of a Prometheus histogram from its _sum/_count lines."""
    total = count = None
    for line in metrics_text.splitlines():
        if line.startswith(f"{name}_sum"):
            total = float(line.split()[-1])
        elif line.startswith(f"{name}_count"):
            count = float(line.split()[-1])
    if not total or not count:
        return 0.0
    return total / count


class _Stack:
    """One bootable service + HTTP front-end combination."""

    def __init__(self, flavor, workers, shards, batch_window):
        self.flavor = flavor
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-bench-svc-")
        kwargs = dict(
            cache_dir=self._tmp.name,
            workers=2,
            batch_window=batch_window,
        )
        if flavor == "sharded":
            kwargs.update(shard_workers=workers, shards=shards)
        self.service = AnalysisService(**kwargs)
        if flavor == "sharded":
            self._aserver = AsyncServerThread(
                self.service, host="127.0.0.1", port=0
            )
            self.url = self._aserver.url
            self._httpd = None
        else:
            self._httpd = make_server(self.service, port=0)
            host, port = self._httpd.server_address[:2]
            self.url = f"http://{host}:{port}"
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever, daemon=True
            )
            self._serve_thread.start()
            self._aserver = None

    def close(self):
        if self._aserver is not None:
            self._aserver.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        self.service.close(drain=False)
        self._tmp.cleanup()


class _DepthSampler:
    """Poll the pool's per-shard queue depths during the load phase."""

    def __init__(self, pool, interval=0.01):
        self.pool = pool
        self.interval = interval
        self.max_depth = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while not self._stop.is_set():
            depths = self.pool.depths()
            if depths:
                self.max_depth = max(self.max_depth, max(depths.values()))
            self._stop.wait(self.interval)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_load(
    stack,
    fingerprint,
    faults,
    direct,
    requests,
    concurrency,
    seed=_PLAN_SEED,
):
    """Fire single-fault /damage requests; verify every response.

    Returns latency/throughput stats.  Raises SystemExit on the first
    response that diverges from the direct damage vector.
    """
    rng = random.Random(seed)
    plan = [rng.randrange(len(faults)) for _ in range(requests)]
    local = threading.local()

    def one(index):
        client = getattr(local, "client", None)
        if client is None:
            client = local.client = ServiceClient(stack.url, timeout=120.0)
        started = time.perf_counter()
        damages = client.damage(fingerprint, [faults[index]], seed=0)
        latency = time.perf_counter() - started
        if damages != [direct[index]]:
            raise SystemExit(
                f"{stack.flavor}: fault {index} returned {damages}, "
                f"direct says {direct[index]}"
            )
        return latency

    sampler = None
    if stack.service.pool is not None:
        sampler = _DepthSampler(stack.service.pool)
    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as executor:
        if sampler is not None:
            with sampler:
                latencies = list(executor.map(one, plan))
        else:
            latencies = list(executor.map(one, plan))
    wall = time.perf_counter() - started
    return {
        "requests": requests,
        "concurrency": concurrency,
        "wall_seconds": wall,
        "throughput_rps": requests / wall if wall > 0 else 0.0,
        "p50_seconds": statistics.median(latencies),
        "p99_seconds": _percentile(latencies, 0.99),
        "max_shard_queue_depth": (
            sampler.max_depth if sampler is not None else None
        ),
    }


def bench_design(
    name, requests, concurrency, workers, shards, batch_window
):
    network = build_design(name)
    spec = spec_for_network(network, seed=0)
    faults = list(iter_all_faults(network))
    direct = [
        float(d)
        for d in GraphDamageAnalysis(
            network, spec, backend="bitset"
        ).damage_vector(faults)
    ]
    n_segments, n_muxes = _counts(network)
    row = {
        "design": name,
        "n_segments": n_segments,
        "n_muxes": n_muxes,
        "n_faults": len(faults),
        "workers": workers,
        "shards": shards,
        "batch_window": batch_window,
        "parity": True,
    }
    for flavor in ("threaded", "sharded"):
        stack = _Stack(flavor, workers, shards, batch_window)
        try:
            client = ServiceClient(stack.url, timeout=120.0)
            fingerprint = client.upload_network(design=name)["fingerprint"]
            # Parity gate: the full fault universe in one request must be
            # bit-identical to the direct vector before anything is timed.
            if client.damage(fingerprint, faults, seed=0) != direct:
                raise SystemExit(
                    f"{flavor}: full-vector parity failed on {name}"
                )
            # Warm the kernel (and the worker-side caches) off the clock.
            run_load(
                stack, fingerprint, faults, direct,
                requests=min(64, requests), concurrency=8, seed=1,
            )
            stats = run_load(
                stack, fingerprint, faults, direct, requests, concurrency
            )
            stats["batch_occupancy_mean"] = _parse_histogram_mean(
                client.metrics(), "repro_batch_occupancy"
            )
            row[flavor] = stats
        finally:
            stack.close()
        print(
            f"{name:16s} {flavor:8s}: "
            f"p50 {row[flavor]['p50_seconds'] * 1e3:7.2f}ms  "
            f"p99 {row[flavor]['p99_seconds'] * 1e3:7.2f}ms  "
            f"{row[flavor]['throughput_rps']:7.1f} req/s  "
            f"occupancy {row[flavor]['batch_occupancy_mean']:.1f}",
            flush=True,
        )
    row["throughput_ratio"] = (
        row["sharded"]["throughput_rps"] / row["threaded"]["throughput_rps"]
        if row["threaded"]["throughput_rps"] > 0
        else 0.0
    )
    return row


def write_service_baseline(
    output,
    quick=False,
    requests=DEFAULT_REQUESTS,
    concurrency=DEFAULT_CONCURRENCY,
    workers=2,
    shards=8,
    batch_window=0.005,
):
    if quick:
        requests = min(requests, 200)
        concurrency = min(concurrency, 16)
    designs = [
        bench_design(
            name, requests, concurrency, workers, shards, batch_window
        )
        for name in DESIGN_NAMES
    ]
    payload = {
        "benchmark": "service-latency",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Concurrent single-fault /damage load against two service "
            "stacks: 'threaded' is the thread-per-request HTTP server "
            "solving coalesced batches in-process; 'sharded' is the "
            "asyncio front-end dispatching coalesced batches to a pool "
            "of worker processes over shared-memory-shipped compiled "
            "IR.  Every response is verified bit-identical to a direct "
            "GraphDamageAnalysis damage vector before and during "
            "timing.  The sharded stack's throughput advantage scales "
            "with host cores (see host.cpus); on a single-core "
            "container the two stacks are expected to be comparable, "
            "with the sharded stack paying the IPC hop."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


# ---------------------------------------------------------------------------
# pytest entry points (benchmarks/ is also a pytest-benchmark suite)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("flavor", ["threaded", "sharded"])
def test_service_damage_load(benchmark, flavor):
    """200 verified single-fault requests at concurrency 16."""
    name = DESIGN_NAMES[0]
    network = build_design(name)
    spec = spec_for_network(network, seed=0)
    faults = list(iter_all_faults(network))
    direct = [
        float(d)
        for d in GraphDamageAnalysis(
            network, spec, backend="bitset"
        ).damage_vector(faults)
    ]
    stack = _Stack(flavor, workers=2, shards=8, batch_window=0.005)
    try:
        client = ServiceClient(stack.url, timeout=120.0)
        fingerprint = client.upload_network(design=name)["fingerprint"]
        stats = benchmark.pedantic(
            lambda: run_load(
                stack, fingerprint, faults, direct,
                requests=200, concurrency=16,
            ),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info.update(
            {"flavor": flavor, "p50_ms": stats["p50_seconds"] * 1e3}
        )
    finally:
        stack.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="write the service-latency perf baseline"
    )
    parser.add_argument("--output", default="results/BENCH_service.json")
    parser.add_argument(
        "--quick", action="store_true",
        help="200 requests at concurrency 16 (CI sanity pass)",
    )
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument(
        "--concurrency", type=int, default=DEFAULT_CONCURRENCY
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument(
        "--batch-window", type=float, default=0.005,
        help="coalescer window in seconds (default 5ms)",
    )
    args = parser.parse_args(argv)
    write_service_baseline(
        args.output,
        quick=args.quick,
        requests=args.requests,
        concurrency=args.concurrency,
        workers=args.workers,
        shards=args.shards,
        batch_window=args.batch_window,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
