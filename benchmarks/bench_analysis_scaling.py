"""Scalability of the criticality analysis (the paper's Sec. VI claim that
"efficient hierarchical processing enables scalability with the increasing
RSN size").

Benchmarks the three pipeline stages separately on generated MBIST-style
networks of growing size, plus the O(N) aggregate analysis against the
O(N^2) explicit reference on a small network (the ablation justifying the
hierarchical computation of Sec. IV-C), plus the serial vs. parallel
criticality engine.

Run as a script to (re)write the perf baseline consumed by later PRs::

    PYTHONPATH=src python benchmarks/bench_analysis_scaling.py \
        --output results/BENCH_criticality.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import pytest

from repro.analysis import CriticalityEngine, analyze_damage
from repro.bench.generators import mbist_network
from repro.rsn.ast import elaborate
from repro.sp import decompose
from repro.spec import spec_for_network

SIZES = [
    (113, 15),
    (1_091, 28),
    (6_068, 45),
    (30_320, 217),
]


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_decomposition_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))

    tree = benchmark.pedantic(
        lambda: decompose(network), rounds=1, iterations=1
    )
    assert len(list(tree.primitive_leaves())) >= n_segments
    benchmark.extra_info.update(
        {"n_segments": n_segments, "n_muxes": n_muxes}
    )


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_fast_analysis_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark.pedantic(
        lambda: analyze_damage(network, spec, tree=tree, method="fast"),
        rounds=1,
        iterations=1,
    )
    assert report.total > 0
    benchmark.extra_info.update(
        {
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "max_damage": report.total,
        }
    )


@pytest.mark.parametrize("jobs", [0, 2])
def test_engine_scaling(benchmark, jobs):
    """The criticality engine, serial vs. a 2-worker pool, on the largest
    generated design (the engine ablation behind BENCH_criticality.json)."""
    n_segments, n_muxes = SIZES[-1]
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    def run():
        engine = CriticalityEngine(
            network, spec, tree=tree, jobs=jobs, min_parallel_primitives=1
        )
        return engine, engine.report()

    engine, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total > 0
    benchmark.extra_info.update(
        {
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "jobs": jobs,
            "engine_stats": engine.stats.as_dict(),
        }
    )


@pytest.mark.parametrize("method", ["fast", "explicit", "graph"])
def test_fast_vs_explicit_analysis(benchmark, method):
    """Ablation A4: the hierarchical aggregate analysis vs the per-fault
    tree reference vs graph reachability on the same 113-segment
    network."""
    network = elaborate(mbist_network(113, 15, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark(
        lambda: analyze_damage(network, spec, tree=tree, method=method)
    )
    benchmark.extra_info.update(
        {"method": method, "max_damage": report.total}
    )


# ---------------------------------------------------------------------------
# baseline writer (results/BENCH_criticality.json)
# ---------------------------------------------------------------------------
def _time_engine(network, spec, tree, method, jobs):
    """One engine run; returns its stats dict plus wall seconds."""
    started = time.perf_counter()
    engine = CriticalityEngine(
        network,
        spec,
        tree=tree,
        method=method,
        jobs=jobs,
        min_parallel_primitives=1,
    )
    report = engine.report()
    elapsed = time.perf_counter() - started
    stats = engine.stats.as_dict()
    stats["wall_seconds"] = elapsed
    stats["total_damage"] = report.total
    return stats


def write_baseline(output: str, quick: bool = False) -> dict:
    """Measure serial vs. parallel faults/s per design and dump JSON.

    The record is the perf trajectory later PRs compare against; `quick`
    drops the largest design for CI sanity passes.
    """
    sizes = SIZES[:-1] if quick else SIZES
    runs = [("fast", n_seg, n_mux) for n_seg, n_mux in sizes]
    # The explicit O(N^2) reference is where per-fault cost is high enough
    # for the pool to pay off; keep it to the sizes that finish in seconds.
    runs.append(("explicit", *SIZES[0]))
    if not quick:
        runs.append(("explicit", *SIZES[1]))

    designs = []
    for method, n_segments, n_muxes in runs:
        network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
        spec = spec_for_network(network, seed=0)
        tree = decompose(network)
        serial = _time_engine(network, spec, tree, method, jobs=0)
        parallel = _time_engine(network, spec, tree, method, jobs=2)
        speedup = (
            serial["wall_seconds"] / parallel["wall_seconds"]
            if parallel["wall_seconds"] > 0
            else 0.0
        )
        entry = {
            "design": f"mbist_{n_segments}_{n_muxes}",
            "method": method,
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "faults": serial["faults_evaluated"],
            "serial": {
                "seconds": serial["wall_seconds"],
                "faults_per_second": serial["faults_per_second"],
            },
            "parallel": {
                "jobs": 2,
                "seconds": parallel["wall_seconds"],
                "faults_per_second": parallel["faults_per_second"],
                "worker_utilization": parallel["worker_utilization"],
                "fallback": parallel["parallel_fallback"],
            },
            "speedup": speedup,
        }
        designs.append(entry)
        print(
            f"{entry['design']:18s} {method:8s} "
            f"serial {serial['wall_seconds']:.3f}s, "
            f"parallel {parallel['wall_seconds']:.3f}s, "
            f"speedup {speedup:.2f}x",
            flush=True,
        )

    payload = {
        "benchmark": "criticality-engine",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Serial vs. 2-worker CriticalityEngine on generated MBIST "
            "networks.  Speedups below 1.0 on a single-CPU host are "
            "expected: the workers time-share one core and the fast "
            "method's O(N) preprocessing dominates its per-fault cost, "
            "so pool start-up is pure overhead there.  The parallel path "
            "pays off for the per-fault-heavy explicit/graph methods on "
            "multi-core hosts."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="write the criticality-engine perf baseline"
    )
    parser.add_argument(
        "--output", default="results/BENCH_criticality.json"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the largest design (CI sanity pass)",
    )
    args = parser.parse_args(argv)
    write_baseline(args.output, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
