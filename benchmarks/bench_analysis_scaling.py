"""Scalability of the criticality analysis (the paper's Sec. VI claim that
"efficient hierarchical processing enables scalability with the increasing
RSN size").

Benchmarks the three pipeline stages separately on generated MBIST-style
networks of growing size, plus the O(N) aggregate analysis against the
O(N^2) explicit reference on a small network (the ablation justifying the
hierarchical computation of Sec. IV-C).
"""

from __future__ import annotations

import pytest

from repro.analysis import analyze_damage
from repro.bench.generators import mbist_network
from repro.rsn.ast import elaborate
from repro.sp import decompose
from repro.spec import spec_for_network

SIZES = [
    (113, 15),
    (1_091, 28),
    (6_068, 45),
    (30_320, 217),
]


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_decomposition_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))

    tree = benchmark.pedantic(
        lambda: decompose(network), rounds=1, iterations=1
    )
    assert len(list(tree.primitive_leaves())) >= n_segments
    benchmark.extra_info.update(
        {"n_segments": n_segments, "n_muxes": n_muxes}
    )


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_fast_analysis_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark.pedantic(
        lambda: analyze_damage(network, spec, tree=tree, method="fast"),
        rounds=1,
        iterations=1,
    )
    assert report.total > 0
    benchmark.extra_info.update(
        {
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "max_damage": report.total,
        }
    )


@pytest.mark.parametrize("method", ["fast", "explicit", "graph"])
def test_fast_vs_explicit_analysis(benchmark, method):
    """Ablation A4: the hierarchical aggregate analysis vs the per-fault
    tree reference vs graph reachability on the same 113-segment
    network."""
    network = elaborate(mbist_network(113, 15, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark(
        lambda: analyze_damage(network, spec, tree=tree, method=method)
    )
    benchmark.extra_info.update(
        {"method": method, "max_damage": report.total}
    )
