"""Scalability of the criticality analysis (the paper's Sec. VI claim that
"efficient hierarchical processing enables scalability with the increasing
RSN size").

Benchmarks the three pipeline stages separately on generated MBIST-style
networks of growing size, plus the O(N) aggregate analysis against the
O(N^2) explicit reference on a small network (the ablation justifying the
hierarchical computation of Sec. IV-C), plus the serial vs. parallel
criticality engine.

Run as a script to (re)write the perf baseline consumed by later PRs::

    PYTHONPATH=src python benchmarks/bench_analysis_scaling.py \
        --output results/BENCH_criticality.json
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import random
import sys
import time

import pytest

from repro.analysis import CriticalityEngine, analyze_damage
from repro.analysis.faults import faults_of_primitive
from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench.generators import mbist_network
from repro.ir import compile_network
from repro.rsn.ast import elaborate
from repro.rsn.primitives import NodeKind
from repro.sim.simulator import ScanSimulator
from repro.sp import decompose
from repro.spec import spec_for_network

SIZES = [
    (113, 15),
    (1_091, 28),
    (6_068, 45),
    (30_320, 217),
]


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_decomposition_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))

    tree = benchmark.pedantic(
        lambda: decompose(network), rounds=1, iterations=1
    )
    assert len(list(tree.primitive_leaves())) >= n_segments
    benchmark.extra_info.update(
        {"n_segments": n_segments, "n_muxes": n_muxes}
    )


@pytest.mark.parametrize("n_segments,n_muxes", SIZES)
def test_fast_analysis_scaling(benchmark, n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark.pedantic(
        lambda: analyze_damage(network, spec, tree=tree, method="fast"),
        rounds=1,
        iterations=1,
    )
    assert report.total > 0
    benchmark.extra_info.update(
        {
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "max_damage": report.total,
        }
    )


@pytest.mark.parametrize("jobs", [0, 2])
def test_engine_scaling(benchmark, jobs):
    """The criticality engine, serial vs. a 2-worker pool, on the largest
    generated design (the engine ablation behind BENCH_criticality.json)."""
    n_segments, n_muxes = SIZES[-1]
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    def run():
        engine = CriticalityEngine(
            network, spec, tree=tree, jobs=jobs, min_parallel_primitives=1
        )
        return engine, engine.report()

    engine, report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.total > 0
    benchmark.extra_info.update(
        {
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "jobs": jobs,
            "engine_stats": engine.stats.as_dict(),
        }
    )


@pytest.mark.parametrize("method", ["fast", "explicit", "graph"])
def test_fast_vs_explicit_analysis(benchmark, method):
    """Ablation A4: the hierarchical aggregate analysis vs the per-fault
    tree reference vs graph reachability on the same 113-segment
    network."""
    network = elaborate(mbist_network(113, 15, seed=0))
    spec = spec_for_network(network, seed=0)
    tree = decompose(network)

    report = benchmark(
        lambda: analyze_damage(network, spec, tree=tree, method=method)
    )
    benchmark.extra_info.update(
        {"method": method, "max_damage": report.total}
    )


# ---------------------------------------------------------------------------
# baseline writer (results/BENCH_criticality.json)
# ---------------------------------------------------------------------------
def _time_engine(network, spec, tree, method, jobs):
    """One engine run; returns its stats dict plus wall seconds."""
    started = time.perf_counter()
    engine = CriticalityEngine(
        network,
        spec,
        tree=tree,
        method=method,
        jobs=jobs,
        min_parallel_primitives=1,
    )
    report = engine.report()
    elapsed = time.perf_counter() - started
    stats = engine.stats.as_dict()
    stats["wall_seconds"] = elapsed
    stats["total_damage"] = report.total
    return stats


def write_baseline(output: str, quick: bool = False) -> dict:
    """Measure serial vs. parallel faults/s per design and dump JSON.

    The record is the perf trajectory later PRs compare against; `quick`
    drops the largest design for CI sanity passes.
    """
    sizes = SIZES[:-1] if quick else SIZES
    runs = [("fast", n_seg, n_mux) for n_seg, n_mux in sizes]
    # The explicit O(N^2) reference is where per-fault cost is high enough
    # for the pool to pay off; keep it to the sizes that finish in seconds.
    runs.append(("explicit", *SIZES[0]))
    if not quick:
        runs.append(("explicit", *SIZES[1]))

    designs = []
    for method, n_segments, n_muxes in runs:
        network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
        spec = spec_for_network(network, seed=0)
        tree = decompose(network)
        serial = _time_engine(network, spec, tree, method, jobs=0)
        parallel = _time_engine(network, spec, tree, method, jobs=2)
        speedup = (
            serial["wall_seconds"] / parallel["wall_seconds"]
            if parallel["wall_seconds"] > 0
            else 0.0
        )
        entry = {
            "design": f"mbist_{n_segments}_{n_muxes}",
            "method": method,
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "faults": serial["faults_evaluated"],
            "serial": {
                "seconds": serial["wall_seconds"],
                "faults_per_second": serial["faults_per_second"],
            },
            "parallel": {
                "jobs": 2,
                "seconds": parallel["wall_seconds"],
                "faults_per_second": parallel["faults_per_second"],
                "worker_utilization": parallel["worker_utilization"],
                "fallback": parallel["parallel_fallback"],
            },
            "speedup": speedup,
        }
        designs.append(entry)
        print(
            f"{entry['design']:18s} {method:8s} "
            f"serial {serial['wall_seconds']:.3f}s, "
            f"parallel {parallel['wall_seconds']:.3f}s, "
            f"speedup {speedup:.2f}x",
            flush=True,
        )

    payload = {
        "benchmark": "criticality-engine",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Serial vs. 2-worker CriticalityEngine on generated MBIST "
            "networks.  Speedups below 1.0 on a single-CPU host are "
            "expected: the workers time-share one core and the fast "
            "method's O(N) preprocessing dominates its per-fault cost, "
            "so pool start-up is pure overhead there.  The parallel path "
            "pays off for the per-fault-heavy explicit/graph methods on "
            "multi-core hosts."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


# ---------------------------------------------------------------------------
# dict-vs-IR baseline writer (results/BENCH_ir.json)
# ---------------------------------------------------------------------------
def _sample_faults(network, count, seed=1234):
    """A deterministic sample of faults across all primitives."""
    faults = []
    for node in network.nodes():
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX):
            faults.extend(faults_of_primitive(network, node.name))
    rng = random.Random(seed)
    if len(faults) <= count:
        return faults
    return rng.sample(faults, count)


def _time_graph_backend(network, spec, faults, backend):
    """Construction + per-fault damage over ``faults``; returns
    (seconds, damages)."""
    started = time.perf_counter()
    analysis = GraphDamageAnalysis(network, spec, backend=backend)
    damages = [analysis.damage_of_fault(fault) for fault in faults]
    return time.perf_counter() - started, damages


def _time_path_walks(network, backend, walks):
    simulator = ScanSimulator(network, path_backend=backend)
    # Open every SIB / select port 1 everywhere: at reset the active path
    # bypasses the whole hierarchy, which would time an empty walk.
    for cell in simulator.update_values:
        simulator.update_values[cell] = 1
    started = time.perf_counter()
    path = None
    for _ in range(walks):
        path = simulator.active_path()
    return time.perf_counter() - started, path


def write_ir_baseline(
    output: str, quick: bool = False, faults_per_design: int = 30
) -> dict:
    """Identical workloads through the dict and compiled-IR backends.

    Per design size: ``faults_per_design`` sampled single-fault damage
    queries through :class:`GraphDamageAnalysis` (4 BFS each — the
    representative hot path) and repeated simulator active-path walks.
    The dict results double as a parity check: any divergence fails the
    run instead of silently benchmarking different answers.
    """
    sizes = SIZES[:-1] if quick else SIZES
    walks = 200
    designs = []
    for n_segments, n_muxes in sizes:
        network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
        spec = spec_for_network(network, seed=0)

        started = time.perf_counter()
        compiled = compile_network(network)
        compile_seconds = time.perf_counter() - started

        faults = _sample_faults(network, faults_per_design)
        dict_seconds, dict_damages = _time_graph_backend(
            network, spec, faults, "dict"
        )
        ir_seconds, ir_damages = _time_graph_backend(
            network, spec, faults, "ir"
        )
        if ir_damages != dict_damages:
            raise SystemExit(
                f"dict-vs-IR damage mismatch on mbist_{n_segments}"
            )

        sim_dict_seconds, dict_path = _time_path_walks(
            network, "dict", walks
        )
        sim_ir_seconds, ir_path = _time_path_walks(network, "ir", walks)
        if ir_path != dict_path:
            raise SystemExit(
                f"dict-vs-IR active-path mismatch on mbist_{n_segments}"
            )

        entry = {
            "design": f"mbist_{n_segments}_{n_muxes}",
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "nodes": compiled.n_nodes,
            "edges": compiled.n_edges,
            "compile_seconds": compile_seconds,
            "pickle_bytes": {
                "network": len(pickle.dumps(network)),
                "ir": len(pickle.dumps(compiled)),
            },
            "graph_analysis": {
                "faults_sampled": len(faults),
                "dict_seconds": dict_seconds,
                "ir_seconds": ir_seconds,
                "speedup": (
                    dict_seconds / ir_seconds if ir_seconds > 0 else 0.0
                ),
            },
            "simulator": {
                "walks": walks,
                "dict_seconds": sim_dict_seconds,
                "ir_seconds": sim_ir_seconds,
                "speedup": (
                    sim_dict_seconds / sim_ir_seconds
                    if sim_ir_seconds > 0
                    else 0.0
                ),
            },
            "parity": True,
        }
        designs.append(entry)
        print(
            f"{entry['design']:18s} "
            f"analysis dict {dict_seconds:.3f}s / ir {ir_seconds:.3f}s "
            f"({entry['graph_analysis']['speedup']:.2f}x), "
            f"paths dict {sim_dict_seconds:.3f}s / "
            f"ir {sim_ir_seconds:.3f}s "
            f"({entry['simulator']['speedup']:.2f}x)",
            flush=True,
        )

    payload = {
        "benchmark": "compiled-ir-vs-dict",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Identical sampled-fault damage workloads and active-path "
            "walks through the string-keyed dict backends and the "
            "compiled array-backed IR backends; results are verified "
            "bit-identical before timing is recorded.  compile_seconds "
            "is the one-off lowering cost amortized across every "
            "consumer via repro.ir.intern."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


# ---------------------------------------------------------------------------
# bitset-vs-scalar baseline writer (results/BENCH_batch.json)
# ---------------------------------------------------------------------------
#: The three MBIST designs of the batch baseline; the largest (6068
#: segments) anchors the acceptance threshold of the bit-parallel kernel.
BATCH_SIZES = SIZES[:3]


def _full_fault_universe(network):
    """Every concrete fault of every scan primitive, in primitive order —
    the workload of a whole-design criticality pass."""
    faults = []
    for node in network.nodes():
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX):
            faults.extend(faults_of_primitive(network, node.name))
    return faults


def _time_damage_vector(network, spec, faults, backend):
    """Construction + full-universe damage vector; returns
    (seconds, damages).  Each backend takes its native path: one
    lane-packed pass for ``bitset``, a per-fault loop for the scalar
    backends."""
    started = time.perf_counter()
    analysis = GraphDamageAnalysis(network, spec, backend=backend)
    if backend == "bitset":
        damages = [float(d) for d in analysis.damage_vector(faults)]
    else:
        damages = [analysis.damage_of_fault(fault) for fault in faults]
    return time.perf_counter() - started, damages


def write_batch_baseline(output: str, quick: bool = False) -> dict:
    """The full-fault-universe criticality pass through all three
    reachability backends of :class:`GraphDamageAnalysis`.

    Unlike the sampled BENCH_ir workload, this times the *whole* fault
    universe per design — the pass the bit-parallel kernel exists for.
    All three damage vectors must be bit-identical before an entry is
    recorded; ``quick`` drops the largest design for CI sanity passes.
    """
    sizes = BATCH_SIZES[:-1] if quick else BATCH_SIZES
    designs = []
    for n_segments, n_muxes in sizes:
        network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
        spec = spec_for_network(network, seed=0)
        faults = _full_fault_universe(network)

        bitset_seconds, bitset_damages = _time_damage_vector(
            network, spec, faults, "bitset"
        )
        ir_seconds, ir_damages = _time_damage_vector(
            network, spec, faults, "ir"
        )
        dict_seconds, dict_damages = _time_damage_vector(
            network, spec, faults, "dict"
        )
        if bitset_damages != ir_damages or ir_damages != dict_damages:
            raise SystemExit(
                f"backend damage mismatch on mbist_{n_segments}"
            )

        entry = {
            "design": f"mbist_{n_segments}_{n_muxes}",
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "faults": len(faults),
            "bitset_seconds": bitset_seconds,
            "ir_seconds": ir_seconds,
            "dict_seconds": dict_seconds,
            "speedup_vs_ir": (
                ir_seconds / bitset_seconds if bitset_seconds > 0 else 0.0
            ),
            "speedup_vs_dict": (
                dict_seconds / bitset_seconds
                if bitset_seconds > 0
                else 0.0
            ),
            "parity": True,
        }
        designs.append(entry)
        print(
            f"{entry['design']:18s} {len(faults):6d} faults: "
            f"bitset {bitset_seconds:.3f}s / ir {ir_seconds:.3f}s / "
            f"dict {dict_seconds:.3f}s "
            f"({entry['speedup_vs_ir']:.1f}x vs ir, "
            f"{entry['speedup_vs_dict']:.1f}x vs dict)",
            flush=True,
        )

    payload = {
        "benchmark": "bitset-batch-analysis",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Full-fault-universe damage vectors through the three "
            "GraphDamageAnalysis backends (bitset = 64 lane-packed "
            "faults per uint64 sweep, ir = per-fault BFS on the "
            "compiled IR, dict = string-keyed reference).  All three "
            "vectors are verified bit-identical before any timing is "
            "recorded.  Timings include backend construction (the "
            "bitset sweep schedule is built once per network)."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="write the criticality-engine perf baseline"
    )
    parser.add_argument(
        "--output", default="results/BENCH_criticality.json"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="skip the largest design (CI sanity pass)",
    )
    parser.add_argument(
        "--ir", action="store_true",
        help="write the dict-vs-IR comparison baseline instead",
    )
    parser.add_argument(
        "--batch", action="store_true",
        help="write the bitset-vs-scalar batch baseline instead",
    )
    args = parser.parse_args(argv)
    if args.ir:
        output = args.output
        if output == parser.get_default("output"):
            output = "results/BENCH_ir.json"
        write_ir_baseline(output, quick=args.quick)
    elif args.batch:
        output = args.output
        if output == parser.get_default("output"):
            output = "results/BENCH_batch.json"
        write_batch_baseline(output, quick=args.quick)
    else:
        write_baseline(args.output, quick=args.quick)
    return 0


if __name__ == "__main__":
    sys.exit(main())
