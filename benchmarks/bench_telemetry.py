"""Telemetry-overhead baseline: the batch sweep with the obs tier live.

The live telemetry tier (metrics-history sampler, structured logging,
lane-byte accounting) instruments the hot batch path; its contract is
that the instrumentation is cheap enough to leave on in production.
This benchmark records both sides of that contract on the bitset batch
sweep — the same workload as ``BENCH_batch.json``:

1. **disabled** — no history sampler running, logging unconfigured
   (the library default: ``logger.debug`` is a couple of attribute
   reads and an early return);
2. **enabled** — a :class:`repro.obs.history.MetricsHistory` sampler
   ticking at a service-realistic interval plus ``configure_logging``
   retaining DEBUG records in a bounded ring.

The ``bench-diff`` gate re-measures *both* sides fresh (the recorded
timings are informational; the gate's ratio is enabled/disabled on the
gate machine) and fails when the enabled path exceeds the disabled one
by more than the per-row ``tolerance`` (default 5%).

Run as a script to (re)write the baseline consumed by ``bench-diff``::

    PYTHONPATH=src python benchmarks/bench_telemetry.py \
        --output results/BENCH_telemetry.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

from repro.analysis.faults import faults_of_primitive
from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench.generators import mbist_network
from repro.obs.history import MetricsHistory
from repro.obs.log import LogBuffer, capturing
from repro.rsn.ast import elaborate
from repro.rsn.primitives import NodeKind
from repro.spec import spec_for_network

#: The MBIST designs of the telemetry baseline (matches BENCH_batch's
#: small and medium rows — big enough that a sweep outlasts several
#: sampler ticks, small enough for a CI gate), each with the per-row
#: overhead tolerance the bench-diff gate enforces.  The ~100 ms
#: 1091-segment sweep is the real 5% gate; the ~25 ms 113-segment row
#: jitters by more than 5% on shared runners regardless of telemetry,
#: so it gates loosely and serves as a small-design sanity row.
SIZES = [
    (113, 15, 0.25),
    (1_091, 28, 0.05),
]

#: Sampler tick while the enabled side runs — far denser than the
#: service default (1 s) so the gate actually exercises sampling cost.
HISTORY_INTERVAL = 0.05


def _build(n_segments, n_muxes):
    network = elaborate(mbist_network(n_segments, n_muxes, seed=0))
    return network, spec_for_network(network, seed=0)


def _all_faults(network):
    faults = []
    for node in network.nodes():
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX):
            faults.extend(faults_of_primitive(network, node.name))
    return faults


def _sweep_seconds(network, spec, faults) -> float:
    analysis = GraphDamageAnalysis(network, spec, backend="bitset")
    started = time.perf_counter()
    analysis.damage_vector(faults)
    return time.perf_counter() - started


def measure_design(n_segments, n_muxes, repeats=3):
    """Best-of-``repeats`` disabled and enabled sweep timings, plus the
    enabled side's telemetry evidence (samples taken, series live).

    Sides are interleaved (disabled, enabled, disabled, ...) so slow
    machine drift lands on both rather than biasing the second side —
    the same discipline the bench-diff gate applies when re-measuring.
    """
    import math

    network, spec = _build(n_segments, n_muxes)
    faults = _all_faults(network)
    _sweep_seconds(network, spec, faults)  # warm both sides' code paths
    disabled = math.inf
    enabled = math.inf
    history_samples = 0
    for _ in range(repeats):
        disabled = min(
            disabled, _sweep_seconds(network, spec, faults)
        )
        history = MetricsHistory(
            interval=HISTORY_INTERVAL, window=64
        ).start()
        try:
            with capturing(LogBuffer()):
                enabled = min(
                    enabled, _sweep_seconds(network, spec, faults)
                )
        finally:
            history.stop()
        history_samples = history.sample_once()
    return {
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "overhead_ratio": enabled / disabled if disabled > 0 else 0.0,
        "faults": len(faults),
        "history_samples": history_samples,
    }


def write_telemetry_baseline(output: str, repeats: int = 3) -> dict:
    designs = []
    for n_segments, n_muxes, tolerance in SIZES:
        row = measure_design(n_segments, n_muxes, repeats=repeats)
        entry = {
            "design": f"mbist_{n_segments}_{n_muxes}",
            "n_segments": n_segments,
            "n_muxes": n_muxes,
            "history_interval": HISTORY_INTERVAL,
            "tolerance": tolerance,
            **row,
        }
        designs.append(entry)
        print(
            f"{entry['design']:18s} disabled "
            f"{row['disabled_seconds'] * 1e3:.2f}ms, enabled "
            f"{row['enabled_seconds'] * 1e3:.2f}ms "
            f"({row['overhead_ratio']:.3f}x, {row['faults']} faults)",
            flush=True,
        )

    payload = {
        "benchmark": "telemetry-overhead",
        "created": time.strftime("%Y-%m-%d %H:%M:%S"),
        "host": {
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "designs": designs,
        "notes": (
            "Bitset batch sweep (damage_vector over the full fault "
            "universe) with the telemetry tier enabled vs disabled.  "
            "enabled = MetricsHistory sampler at "
            f"{HISTORY_INTERVAL}s ticks + configure_logging retaining "
            "DEBUG records; disabled = no sampler, logging "
            "unconfigured.  The bench-diff gate re-measures both sides "
            "fresh (interleaved, best-of) and fails when "
            "enabled/disabled exceeds the per-row tolerance — the "
            "recorded seconds here are informational.  The 1091-row is "
            "the 5% gate; the sub-50ms 113-row gates loosely because "
            "its machine jitter exceeds 5% regardless of telemetry."
        ),
    }
    os.makedirs(os.path.dirname(output) or ".", exist_ok=True)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    return payload


# ---------------------------------------------------------------------------
# pytest entry point (benchmarks/ is also a pytest-benchmark suite)
# ---------------------------------------------------------------------------
def test_telemetry_overhead_small():
    """Enabled-path sweep stays parity-correct and the sampler ticks."""
    network, spec = _build(*SIZES[0][:2])
    faults = _all_faults(network)
    analysis = GraphDamageAnalysis(network, spec, backend="bitset")
    baseline = analysis.damage_vector(faults)
    history = MetricsHistory(interval=0.01, window=16).start()
    try:
        with capturing(LogBuffer()):
            instrumented = GraphDamageAnalysis(
                network, spec, backend="bitset"
            ).damage_vector(faults)
    finally:
        history.stop()
    assert list(instrumented) == list(baseline)
    assert history.sample_once() > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="write the telemetry-overhead perf baseline"
    )
    parser.add_argument(
        "--output",
        default="results/BENCH_telemetry.json",
        help="baseline path (default results/BENCH_telemetry.json)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats per side; the best is kept (default 3)",
    )
    args = parser.parse_args(argv)
    write_telemetry_baseline(args.output, repeats=args.repeats)
    return 0


if __name__ == "__main__":
    sys.exit(main())
