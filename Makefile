# Convenience targets for the RSN reproduction repo.
#
# Every python-running target exports PYTHONPATH=src so the targets work
# on a clean checkout without an editable install (the same invocation CI
# and ROADMAP's tier-1 verify use).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: install test test-fast bench bench-ir bench-batch bench-ea bench-service bench-campaigns bench-telemetry bench-diff baseline lint table1 sweeps examples serve-smoke clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-fast:
	$(PYTHON) -m pytest tests/ -m "not slow" -x

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

baseline:
	$(PYTHON) benchmarks/bench_analysis_scaling.py --output results/BENCH_criticality.json

bench-ir:
	$(PYTHON) benchmarks/bench_analysis_scaling.py --ir --output results/BENCH_ir.json

bench-batch:
	$(PYTHON) benchmarks/bench_analysis_scaling.py --batch --output results/BENCH_batch.json

bench-ea:
	$(PYTHON) benchmarks/bench_ea_population.py --output results/BENCH_ea.json --lowering-output results/BENCH_ea_lowering.json

bench-service:
	$(PYTHON) benchmarks/bench_service_load.py --output results/BENCH_service.json

bench-campaigns:
	$(PYTHON) benchmarks/bench_campaigns.py --output results/BENCH_campaigns.json

bench-telemetry:
	$(PYTHON) benchmarks/bench_telemetry.py --output results/BENCH_telemetry.json

bench-diff:
	$(PYTHON) -m repro.cli bench-diff results/BENCH_criticality.json results/BENCH_batch.json results/BENCH_ea.json results/BENCH_ea_lowering.json results/BENCH_service.json results/BENCH_campaigns.json results/BENCH_telemetry.json --tolerance 0.2

lint:
	ruff check src tests benchmarks examples

table1:
	$(PYTHON) -m repro.cli table1 --compare

sweeps:
	bash results/run_sweeps.sh

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/runtime_avfs_hardening.py
	$(PYTHON) examples/tradeoff_exploration.py TreeFlat /tmp/tradeoff.csv
	$(PYTHON) examples/fault_diagnosis.py
	$(PYTHON) examples/batch_access.py
	$(PYTHON) examples/post_silicon_validation.py

serve-smoke:
	$(PYTHON) examples/service_smoke.py

clean:
	rm -rf build dist src/*.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -prune -exec rm -rf {} \;
