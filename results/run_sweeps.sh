#!/bin/bash
cd /root/repo
SMALL="TreeFlat TreeUnbalanced TreeBalanced TreeFlat_Ex q12710 a586710 p34392 t512505 p22810 p93791 MBIST_1_5_5 MBIST_2_5_5 MBIST_1_5_20 MBIST_2_5_20 MBIST_5_5_5 MBIST_1_20_20"
LARGE="MBIST_2_20_20 MBIST_5_20_20 MBIST_20_20_20 MBIST_55_20_5 MBIST_100_20_5 MBIST_5_100_20 MBIST_5_100_100 MBIST_100_100_5"
python -m repro.cli table1 --designs $SMALL --json results/rows_full.json --compare > results/table1_full.log 2>&1
echo "FULL DONE"
python -m repro.cli table1 --designs $SMALL --damage-sites mux --hardenable control --json results/rows_mux.json --compare > results/table1_mux.log 2>&1
echo "MUX DONE"
python -m repro.cli table1 --designs $LARGE --scale-generations 0.1 --json results/rows_large.json --compare > results/table1_large.log 2>&1
echo "LARGE DONE"
