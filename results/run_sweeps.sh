#!/bin/bash
cd /root/repo
SMALL="TreeFlat TreeUnbalanced TreeBalanced TreeFlat_Ex q12710 a586710 p34392 t512505 p22810 p93791 MBIST_1_5_5 MBIST_2_5_5 MBIST_1_5_20 MBIST_2_5_20 MBIST_5_5_5 MBIST_1_20_20"
LARGE="MBIST_2_20_20 MBIST_5_20_20 MBIST_20_20_20 MBIST_55_20_5 MBIST_100_20_5 MBIST_5_100_20 MBIST_5_100_100 MBIST_100_100_5"
python -m repro.cli table1 --designs $SMALL --json results/rows_full.json --compare > results/table1_full.log 2>&1
echo "FULL DONE"
python -m repro.cli table1 --designs $SMALL --damage-sites mux --hardenable control --json results/rows_mux.json --compare > results/table1_mux.log 2>&1
echo "MUX DONE"
python -m repro.cli table1 --designs $LARGE --scale-generations 0.1 --json results/rows_large.json --compare > results/table1_large.log 2>&1
echo "LARGE DONE"
# Fault-set objective sweep: every EA evaluation is a joint-damage
# lane sweep, so the generation budget is scaled down uniformly (0.1);
# the bitset backend + vectorized lowering + default 64 MB streaming
# budget carry the EA.  The linear run repeats the same budgets/
# backend/seed so the fronts compare fairly (rendered side by side by
# render_tables.py).  The >= 750k-segment giants and the 8,102-mux
# MBIST_55_20_5 are excluded: the full bitset criticality pass that
# seeds the candidates is quadratic (n_faults x n_nodes) and needs
# multi-hour runs on a single core — ROADMAP item 3's memory/
# compute-bounded sweep is the fix.
FAULTSET="$SMALL MBIST_2_20_20 MBIST_5_20_20 MBIST_20_20_20 MBIST_100_20_5 MBIST_5_100_20"
python -m repro.cli table1 --designs $FAULTSET --backend bitset --scale-generations 0.1 --json results/rows_linear01.json --compare > results/table1_linear01.log 2>&1
echo "LINEAR01 DONE"
python -m repro.cli table1 --designs $FAULTSET --objective fault-set --backend bitset --scale-generations 0.1 --json results/rows_faultset.json --compare --stats > results/table1_faultset.log 2>&1
echo "FAULTSET DONE"
