#!/usr/bin/env python3
"""Render the EXPERIMENTS.md result tables from the sweep JSON files.

Usage:  python results/render_tables.py
Reads results/rows_full.json, rows_mux.json, rows_large.json (whichever
exist) and prints markdown tables with paper-vs-measured columns.
"""

import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parent


def fmt(value, digits=0):
    if value is None:
        return "—"
    return f"{value:,.{digits}f}"


def pct(part, whole):
    if part is None or not whole:
        return "—"
    return f"{100.0 * part / whole:.1f}%"


def mmss(seconds):
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes:02d}:{secs:02d}"


def render(path, title):
    if not path.exists():
        print(f"({path.name} missing — run the sweep first)\n")
        return
    rows = json.loads(path.read_text())
    print(f"### {title}\n")
    print(
        "| design | #seg | #mux | max cost | max damage | gens | "
        "cost @ dmg≤10% | (paper %→ours %) | dmg @ cost≤10% | "
        "(paper %→ours %) | greedy cost | time (paper) |"
    )
    print("|---|---|---|---|---|---|---|---|---|---|---|---|")
    for r in rows:
        p = r["paper"]
        paper_cost_pct = pct(p["min_cost"][0], p["max_cost"])
        ours_cost_pct = pct(r["min_cost"][0], r["max_cost"])
        paper_dmg_pct = pct(p["min_damage"][1], p["max_damage"])
        ours_dmg_pct = pct(r["min_damage"][1], r["max_damage"])
        print(
            f"| {r['design']} | {r['n_segments']:,} | {r['n_muxes']:,} "
            f"| {fmt(r['max_cost'])} | {fmt(r['max_damage'])} "
            f"| {r['generations']} "
            f"| {fmt(r['min_cost'][0])} | {paper_cost_pct}→{ours_cost_pct} "
            f"| {fmt(r['min_damage'][1])} | {paper_dmg_pct}→{ours_dmg_pct} "
            f"| {fmt(r['greedy'][0])} "
            f"| {mmss(r['runtime_seconds'])} ({p['runtime']}) |"
        )
    print()


def render_faultset(path, linear_path, title):
    """Fault-set objective rows side by side with the linear fronts.

    The linear reference is the same-budget `rows_linear01.json` sweep
    when present (fair comparison: identical generations, backend and
    seed), falling back to the full-budget `rows_full.json` rows.
    Constraint percentages are relative to each objective's own maximum
    — the joint max damage is not the linear sum.
    """
    if not path.exists():
        print(f"({path.name} missing — run the sweep first)\n")
        return
    rows = json.loads(path.read_text())
    linear = {}
    if linear_path.exists():
        linear = {r["design"]: r for r in json.loads(linear_path.read_text())}
        fallback = False
    else:
        full = RESULTS / "rows_full.json"
        if full.exists():
            linear = {r["design"]: r for r in json.loads(full.read_text())}
        fallback = True
    print(f"### {title}\n")
    print(
        "| design | #seg | #mux | gens | max damage (joint) | "
        "cost @ dmg≤10% (linear→fault-set) | "
        "dmg≤10% of max (linear→fault-set) | "
        "dmg @ cost≤10% %max (linear→fault-set) | states swept | time |"
    )
    print("|---|---|---|---|---|---|---|---|---|---|")
    for r in rows:
        lin = linear.get(r["design"])
        lin_cost = fmt(lin["min_cost"][0]) if lin else "—"
        lin_cost_dmg = (
            pct(lin["min_cost"][1], lin["max_damage"]) if lin else "—"
        )
        lin_dmg_pct = (
            pct(lin["min_damage"][1], lin["max_damage"]) if lin else "—"
        )
        swept = r.get("ea_states_swept")
        print(
            f"| {r['design']} | {r['n_segments']:,} | {r['n_muxes']:,} "
            f"| {r['generations']} | {fmt(r['max_damage'])} "
            f"| {lin_cost}→{fmt(r['min_cost'][0])} "
            f"| {lin_cost_dmg}→{pct(r['min_cost'][1], r['max_damage'])} "
            f"| {lin_dmg_pct}→{pct(r['min_damage'][1], r['max_damage'])} "
            f"| {fmt(swept) if swept is not None else '—'} "
            f"| {mmss(r['runtime_seconds'])} |"
        )
    print()
    if fallback:
        print(
            "(linear reference: full-budget rows_full.json — "
            "run the linear ×0.1 sweep for a same-budget comparison)\n"
        )


if __name__ == "__main__":
    render(
        RESULTS / "rows_full.json",
        "Small/medium designs — faithful accounting, full generation "
        "budgets",
    )
    render(
        RESULTS / "rows_mux.json",
        "Small/medium designs — mux-only accounting "
        "(`--damage-sites mux --hardenable control`)",
    )
    render(
        RESULTS / "rows_large.json",
        "Large MBIST designs — faithful accounting, generation budgets "
        "scaled ×0.1",
    )
    render_faultset(
        RESULTS / "rows_faultset.json",
        RESULTS / "rows_linear01.json",
        "Fault-set objective vs same-budget linear fronts, 21 designs "
        "(`--objective fault-set --backend bitset`, budgets ×0.1)",
    )
