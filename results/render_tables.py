#!/usr/bin/env python3
"""Render the EXPERIMENTS.md result tables from the sweep JSON files.

Usage:  python results/render_tables.py
Reads results/rows_full.json, rows_mux.json, rows_large.json (whichever
exist) and prints markdown tables with paper-vs-measured columns.
"""

import json
from pathlib import Path

RESULTS = Path(__file__).resolve().parent


def fmt(value, digits=0):
    if value is None:
        return "—"
    return f"{value:,.{digits}f}"


def pct(part, whole):
    if part is None or not whole:
        return "—"
    return f"{100.0 * part / whole:.1f}%"


def mmss(seconds):
    minutes, secs = divmod(int(round(seconds)), 60)
    return f"{minutes:02d}:{secs:02d}"


def render(path, title):
    if not path.exists():
        print(f"({path.name} missing — run the sweep first)\n")
        return
    rows = json.loads(path.read_text())
    print(f"### {title}\n")
    print(
        "| design | #seg | #mux | max cost | max damage | gens | "
        "cost @ dmg≤10% | (paper %→ours %) | dmg @ cost≤10% | "
        "(paper %→ours %) | greedy cost | time (paper) |"
    )
    print("|---|---|---|---|---|---|---|---|---|---|---|---|")
    for r in rows:
        p = r["paper"]
        paper_cost_pct = pct(p["min_cost"][0], p["max_cost"])
        ours_cost_pct = pct(r["min_cost"][0], r["max_cost"])
        paper_dmg_pct = pct(p["min_damage"][1], p["max_damage"])
        ours_dmg_pct = pct(r["min_damage"][1], r["max_damage"])
        print(
            f"| {r['design']} | {r['n_segments']:,} | {r['n_muxes']:,} "
            f"| {fmt(r['max_cost'])} | {fmt(r['max_damage'])} "
            f"| {r['generations']} "
            f"| {fmt(r['min_cost'][0])} | {paper_cost_pct}→{ours_cost_pct} "
            f"| {fmt(r['min_damage'][1])} | {paper_dmg_pct}→{ours_dmg_pct} "
            f"| {fmt(r['greedy'][0])} "
            f"| {mmss(r['runtime_seconds'])} ({p['runtime']}) |"
        )
    print()


if __name__ == "__main__":
    render(
        RESULTS / "rows_full.json",
        "Small/medium designs — faithful accounting, full generation "
        "budgets",
    )
    render(
        RESULTS / "rows_mux.json",
        "Small/medium designs — mux-only accounting "
        "(`--damage-sites mux --hardenable control`)",
    )
    render(
        RESULTS / "rows_large.json",
        "Large MBIST designs — faithful accounting, generation budgets "
        "scaled ×0.1",
    )
