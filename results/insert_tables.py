#!/usr/bin/env python3
"""Insert the rendered result tables into EXPERIMENTS.md.

Replaces everything between the TABLES:BEGIN / TABLES:END markers with the
output of render_tables.py.  Idempotent.
"""

import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import render_tables  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
EXPERIMENTS = ROOT / "EXPERIMENTS.md"
BEGIN = "<!-- TABLES:BEGIN -->"
END = "<!-- TABLES:END -->"


def main() -> int:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        render_tables.render(
            render_tables.RESULTS / "rows_full.json",
            "Small/medium designs — faithful accounting, full generation "
            "budgets",
        )
        render_tables.render(
            render_tables.RESULTS / "rows_mux.json",
            "Small/medium designs — mux-only accounting "
            "(`--damage-sites mux --hardenable control`)",
        )
        render_tables.render(
            render_tables.RESULTS / "rows_large.json",
            "Large MBIST designs — faithful accounting, generation "
            "budgets scaled ×0.1",
        )
        render_tables.render_faultset(
            render_tables.RESULTS / "rows_faultset.json",
            render_tables.RESULTS / "rows_linear01.json",
            "Fault-set objective vs same-budget linear fronts, 21 designs "
            "(`--objective fault-set --backend bitset`, budgets ×0.1)",
        )
    tables = buffer.getvalue().strip()

    text = EXPERIMENTS.read_text()
    begin = text.index(BEGIN) + len(BEGIN)
    end = text.index(END)
    text = text[:begin] + "\n\n" + tables + "\n\n" + text[end:]
    EXPERIMENTS.write_text(text)
    print(f"inserted {len(tables.splitlines())} table lines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
