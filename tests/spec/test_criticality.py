"""Unit and property tests for the criticality specification."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SpecificationError
from repro.spec import CriticalitySpec, random_spec, uniform_spec


class TestCriticalitySpec:
    def test_lookup(self):
        spec = CriticalitySpec({"a": (3, 7)})
        assert spec.do("a") == 3.0
        assert spec.ds("a") == 7.0
        assert spec.weight("a") == (3.0, 7.0)

    def test_unknown_instrument_is_zero_weight(self):
        spec = CriticalitySpec({})
        assert spec.weight("ghost") == (0.0, 0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(SpecificationError):
            CriticalitySpec({"a": (-1, 0)})

    def test_malformed_pair_rejected(self):
        with pytest.raises(SpecificationError):
            CriticalitySpec({"a": 5})

    def test_totals(self):
        spec = CriticalitySpec({"a": (1, 2), "b": (3, 4)})
        assert spec.total_do() == 4.0
        assert spec.total_ds() == 6.0

    def test_critical_sets_inferred_by_dominance(self):
        spec = CriticalitySpec(
            {"crit": (100, 1), "u1": (30, 5), "u2": (20, 5)}
        )
        assert spec.critical_for_observation() == ["crit"]
        # the two 5-weights do not dominate each other
        assert spec.critical_for_control() == []

    def test_critical_sets_explicit_declaration_wins(self):
        spec = CriticalitySpec(
            {"a": (1, 1), "b": (1, 1)},
            critical_observation=["a"],
            critical_control=["b"],
        )
        assert spec.critical_for_observation() == ["a"]
        assert spec.critical_for_control() == ["b"]

    def test_critical_declaration_of_unknown_rejected(self):
        with pytest.raises(SpecificationError):
            CriticalitySpec({"a": (1, 1)}, critical_observation=["ghost"])

    def test_check_against_network(self, fig1_network):
        CriticalitySpec({"i1": (1, 1)}).check_against(fig1_network)
        with pytest.raises(SpecificationError):
            CriticalitySpec({"ghost": (1, 1)}).check_against(fig1_network)

    def test_json_roundtrip(self):
        spec = CriticalitySpec({"a": (1.5, 2.0), "b": (0, 9)})
        assert CriticalitySpec.from_json(spec.to_json()) == spec

    def test_dict_roundtrip(self):
        spec = CriticalitySpec({"a": (1, 2)})
        assert CriticalitySpec.from_dict(spec.to_dict()) == spec


class TestUniformSpec:
    def test_every_instrument_weighted(self):
        spec = uniform_spec(["a", "b"], do=2, ds=3)
        assert spec.weight("a") == (2.0, 3.0)
        assert spec.weight("b") == (2.0, 3.0)


class TestRandomSpec:
    def test_deterministic_in_seed(self):
        names = [f"i{k}" for k in range(50)]
        assert random_spec(names, seed=5) == random_spec(names, seed=5)
        assert random_spec(names, seed=5) != random_spec(names, seed=6)

    def test_paper_fractions(self):
        names = [f"i{k}" for k in range(200)]
        spec = random_spec(names, seed=1)
        non_zero_do = sum(1 for n in names if spec.do(n) > 0)
        non_zero_ds = sum(1 for n in names if spec.ds(n) > 0)
        # 70% weighted; criticals may add a few on top
        assert 140 <= non_zero_do <= 160
        assert 140 <= non_zero_ds <= 160

    def test_critical_count_close_to_ten_percent(self):
        names = [f"i{k}" for k in range(200)]
        spec = random_spec(names, seed=2)
        assert 15 <= len(spec.critical_for_observation()) <= 25
        assert 15 <= len(spec.critical_for_control()) <= 25

    def test_critical_weight_dominates_uncritical_sum(self):
        """Sec. IV-A: an important instrument outweighs all uncritical
        ones together."""
        names = [f"i{k}" for k in range(100)]
        spec = random_spec(names, seed=3)
        criticals = set(spec.critical_for_observation())
        assert criticals
        uncritical_sum = sum(
            spec.do(n) for n in names if n not in criticals
        )
        for name in criticals:
            assert spec.do(name) >= uncritical_sum - spec.do(name) or (
                spec.do(name) >= uncritical_sum * 0.5
            )

    def test_bad_fraction_rejected(self):
        with pytest.raises(SpecificationError):
            random_spec(["a"], frac_weighted_obs=1.5)

    def test_bad_weight_range_rejected(self):
        with pytest.raises(SpecificationError):
            random_spec(["a"], weight_range=(0, 10))
        with pytest.raises(SpecificationError):
            random_spec(["a"], weight_range=(5, 3))

    def test_empty_instrument_list(self):
        spec = random_spec([], seed=0)
        assert len(spec) == 0

    @settings(max_examples=30, deadline=None)
    @given(
        count=st.integers(min_value=1, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_weights_always_nonnegative(self, count, seed):
        names = [f"i{k}" for k in range(count)]
        spec = random_spec(names, seed=seed)
        for name in names:
            do_w, ds_w = spec.weight(name)
            assert do_w >= 0 and ds_w >= 0
