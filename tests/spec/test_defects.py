"""Unit tests for defect-probability models (expected damage)."""

import pytest

from repro.analysis import analyze_damage
from repro.errors import SpecificationError
from repro.spec import (
    AreaDefects,
    UniformDefects,
    defect_weights,
    expected_damage_report,
    spec_for_network,
)


@pytest.fixture
def report(fig1_network):
    spec = spec_for_network(fig1_network, seed=2)
    return analyze_damage(fig1_network, spec)


class TestDefectWeights:
    def test_uniform_is_all_ones(self, fig1_network):
        weights = defect_weights(fig1_network, UniformDefects())
        assert all(value == 1.0 for value in weights.values())

    def test_area_scales_with_length(self, fig1_network):
        weights = defect_weights(
            fig1_network, AreaDefects(), normalize=False
        )
        assert weights["d"] == 4.0  # 4-bit segment
        assert weights["a"] == 2.0
        assert weights["m0"] == 1.0  # 2 inputs * 0.5

    def test_normalization_mean_one(self, fig1_network):
        weights = defect_weights(fig1_network, AreaDefects())
        mean = sum(weights.values()) / len(weights)
        assert mean == pytest.approx(1.0)

    def test_negative_area_rejected(self):
        with pytest.raises(SpecificationError):
            AreaDefects(bit_area=0)


class TestExpectedDamage:
    def test_uniform_model_is_identity(self, report):
        expected = expected_damage_report(report, UniformDefects())
        assert expected.total == pytest.approx(report.total)
        for name, damage in report.primitive_damage.items():
            assert expected.primitive_damage[name] == pytest.approx(damage)

    def test_area_model_reweights(self, report):
        expected = expected_damage_report(report, AreaDefects())
        assert expected.total != pytest.approx(report.total)
        # normalized weights keep the totals on the same order
        assert 0.1 * report.total < expected.total < 10 * report.total

    def test_unit_damage_consistent_with_members(self, report):
        expected = expected_damage_report(report, AreaDefects())
        for unit in report.network.units():
            assert expected.unit_damage[unit.name] == pytest.approx(
                sum(
                    expected.primitive_damage[member]
                    for member in unit.members
                )
            )

    def test_hardening_consumes_expected_report(self, fig1_network, report):
        from repro.core.problem import HardeningProblem
        from repro.spec import UniformCost

        expected = expected_damage_report(report, AreaDefects())
        problem = HardeningProblem(
            fig1_network, expected, UniformCost()
        )
        assert problem.max_damage == pytest.approx(expected.total)

    def test_wide_registers_dominate_expected_ranking(self, fig1_network):
        """Under the area model, a long segment's break gains importance
        relative to an equally damaging short one."""
        spec = spec_for_network(fig1_network, seed=2)
        base = analyze_damage(fig1_network, spec)
        expected = expected_damage_report(base, AreaDefects())
        # segment d (4 bits) gains relative to segment a (2 bits)
        gain_d = expected.primitive_damage["d"] / max(
            base.primitive_damage["d"], 1e-9
        )
        gain_a = expected.primitive_damage["a"] / max(
            base.primitive_damage["a"], 1e-9
        )
        assert gain_d > gain_a
