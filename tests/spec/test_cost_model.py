"""Unit tests for the hardening cost models."""

import pytest

from repro.errors import SpecificationError
from repro.spec import (
    GateCountCost,
    PerBitCost,
    UniformCost,
    cost_vector,
    max_cost,
)


class TestUniformCost:
    def test_constant_per_unit(self, sib_network):
        model = UniformCost(2.5)
        for unit in sib_network.units():
            assert model.unit_cost(sib_network, unit) == 2.5

    def test_constant_per_segment(self, sib_network):
        assert UniformCost().segment_cost(sib_network, "in1") == 1.0

    def test_nonpositive_rejected(self):
        with pytest.raises(SpecificationError):
            UniformCost(0)


class TestGateCountCost:
    def test_sib_unit_cost(self, sib_network):
        model = GateCountCost(ff_factor=2, mux_factor=2, voter=1)
        unit = sib_network.unit("sib0")
        # bit: 2*1 + 1 = 3 ; mux: 2*2 + 1 = 5
        assert model.unit_cost(sib_network, unit) == 8.0

    def test_wider_mux_costs_more(self, mux3_network):
        model = GateCountCost()
        unit = mux3_network.unit("unit.m.sel")
        # 2-bit select cell: 2*2+1 = 5; 3-input mux: 2*3+1 = 7
        assert model.unit_cost(mux3_network, unit) == 12.0

    def test_segment_cost_scales_with_length(self, sib_network):
        model = GateCountCost()
        assert model.segment_cost(sib_network, "in2") > model.segment_cost(
            sib_network, "in1"
        )

    def test_bad_factors_rejected(self):
        with pytest.raises(SpecificationError):
            GateCountCost(ff_factor=0)


class TestPerBitCost:
    def test_unit_cost_counts_cell_bits(self, sib_network):
        model = PerBitCost(per_bit=3)
        unit = sib_network.unit("sib0")
        assert model.unit_cost(sib_network, unit) == 3.0  # one-bit SIB cell

    def test_mux_surcharge(self, sib_network):
        model = PerBitCost(per_bit=1, per_mux=4)
        unit = sib_network.unit("sib0")
        assert model.unit_cost(sib_network, unit) == 5.0

    def test_segment_cost(self, sib_network):
        model = PerBitCost(per_bit=2)
        assert model.segment_cost(sib_network, "in2") == 6.0  # 3 bits

    def test_bad_per_bit_rejected(self):
        with pytest.raises(SpecificationError):
            PerBitCost(per_bit=0)


class TestVectorHelpers:
    def test_cost_vector_alignment(self, fig1_network):
        units = list(fig1_network.units())
        model = GateCountCost()
        vector = cost_vector(fig1_network, units, model)
        assert len(vector) == len(units)
        for value, unit in zip(vector, units):
            assert value == model.unit_cost(fig1_network, unit)

    def test_max_cost_is_vector_sum(self, fig1_network):
        units = list(fig1_network.units())
        model = GateCountCost()
        assert max_cost(fig1_network, units, model) == pytest.approx(
            cost_vector(fig1_network, units, model).sum()
        )

    def test_all_costs_positive(self, fig1_network):
        for model in (UniformCost(), GateCountCost(), PerBitCost()):
            vector = cost_vector(
                fig1_network, list(fig1_network.units()), model
            )
            assert (vector > 0).all()
