"""Resource probes: CPU/RSS/lane-byte deltas and their merge."""

from repro.obs.resources import (
    ResourceProbe,
    add_lane_bytes,
    lane_bytes_total,
    process_cpu_seconds,
    process_rss_bytes,
)


def test_process_signals_are_live():
    assert process_rss_bytes() > 0
    before = process_cpu_seconds()
    acc = 0
    for value in range(200_000):
        acc += value
    assert process_cpu_seconds() >= before


def test_lane_byte_counter_is_cumulative():
    before = lane_bytes_total()
    add_lane_bytes(1024)
    add_lane_bytes(1024)
    assert lane_bytes_total() == before + 2048


def test_probe_delta_fields_and_lane_attribution():
    probe = ResourceProbe()
    add_lane_bytes(3 * 1024 * 1024)
    delta = probe.delta()
    assert set(delta) == {
        "wall_seconds",
        "cpu_seconds",
        "rss_delta_bytes",
        "lane_mb",
    }
    assert delta["wall_seconds"] >= 0.0
    assert delta["cpu_seconds"] >= 0.0
    assert delta["lane_mb"] == 3.0
    assert isinstance(delta["rss_delta_bytes"], int)


def test_nested_probes_are_independent():
    outer = ResourceProbe()
    add_lane_bytes(1024 * 1024)
    inner = ResourceProbe()
    add_lane_bytes(1024 * 1024)
    assert inner.delta()["lane_mb"] == 1.0
    assert outer.delta()["lane_mb"] == 2.0


def test_merge_sums_records_and_skips_empty():
    merged = ResourceProbe.merge(
        [
            {
                "wall_seconds": 1.0,
                "cpu_seconds": 2.0,
                "rss_delta_bytes": 100,
                "lane_mb": 0.5,
            },
            None,
            {
                "wall_seconds": 0.5,
                "cpu_seconds": 0.25,
                "rss_delta_bytes": -40,
                "lane_mb": 1.5,
            },
        ]
    )
    assert merged == {
        "wall_seconds": 1.5,
        "cpu_seconds": 2.25,
        "rss_delta_bytes": 60,
        "lane_mb": 2.0,
    }


def test_merge_of_nothing_is_none():
    assert ResourceProbe.merge([]) is None
    assert ResourceProbe.merge([None, {}]) is None
