"""The unified registry: get-or-create semantics and engine-stat folding.

The global registry is process-wide, so registration must be idempotent
— two ``AnalysisService`` instances (or a service next to a CLI engine)
asking for ``repro_engine_cache_total`` must share one counter, while a
conflicting re-registration (same name, different shape) must fail
loudly instead of silently splitting the series.
"""

from types import SimpleNamespace

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    record_engine_stats,
)


def _stats(**overrides):
    base = dict(
        method="fast",
        backend="ir",
        cache="miss",
        faults_evaluated=100,
        lanes=0,
        cache_evictions=0,
        elapsed_seconds=0.25,
    )
    base.update(overrides)
    return SimpleNamespace(**base)


class TestGetOrCreate:
    def test_same_shape_returns_the_same_object(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help", ("a",))
        second = registry.counter("x_total", "other help", ("a",))
        assert first is second

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "help")

    def test_label_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "help", ("a",))
        with pytest.raises(ValueError):
            registry.counter("x_total", "help", ("a", "b"))

    def test_histogram_dedupes_on_name_not_buckets(self):
        registry = MetricsRegistry()
        first = registry.histogram("h_seconds", "help", buckets=(1, 2))
        second = registry.histogram("h_seconds", "help", buckets=(5, 6))
        assert first is second
        assert isinstance(first, Histogram)

    def test_gauge_get_or_create(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g", "help")
        assert registry.gauge("g", "help") is gauge
        assert isinstance(gauge, Gauge)

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()
        assert isinstance(global_registry(), MetricsRegistry)


class TestRecordEngineStats:
    def test_miss_counts_reports_faults_and_latency(self):
        registry = MetricsRegistry()
        record_engine_stats(_stats(), registry=registry)
        assert (
            registry.get("repro_engine_reports_total").value(
                method="fast", backend="ir"
            )
            == 1
        )
        assert (
            registry.get("repro_engine_cache_total").value(outcome="miss")
            == 1
        )
        assert registry.get("repro_engine_faults_total").value() == 100
        histogram = registry.get("repro_engine_report_seconds")
        assert histogram.count(cache="miss") == 1
        assert histogram.sum(cache="miss") == pytest.approx(0.25)

    def test_hit_skips_fault_throughput(self):
        registry = MetricsRegistry()
        record_engine_stats(_stats(cache="hit"), registry=registry)
        assert (
            registry.get("repro_engine_cache_total").value(outcome="hit")
            == 1
        )
        assert registry.get("repro_engine_faults_total") is None

    def test_lanes_and_evictions_recorded_when_present(self):
        registry = MetricsRegistry()
        record_engine_stats(
            _stats(lanes=640, cache_evictions=3), registry=registry
        )
        assert registry.get("repro_engine_lanes_total").value() == 640
        assert (
            registry.get("repro_engine_cache_evictions_total").value() == 3
        )

    def test_accumulates_across_calls(self):
        registry = MetricsRegistry()
        for _ in range(3):
            record_engine_stats(_stats(faults_evaluated=10), registry=registry)
        assert registry.get("repro_engine_faults_total").value() == 30

    def test_render_exposes_prometheus_text(self):
        registry = MetricsRegistry()
        record_engine_stats(_stats(), registry=registry)
        text = registry.render()
        assert '# TYPE repro_engine_cache_total counter' in text
        assert 'repro_engine_cache_total{outcome="miss"} 1' in text

    def test_service_shim_reexports_the_obs_module(self):
        from repro.service import metrics as shim

        assert shim.MetricsRegistry is MetricsRegistry
        assert shim.Counter is Counter
        assert shim.global_registry is global_registry
