"""Sampling profiler: folded stacks, top view, bounded stack table."""

import threading
import time

import pytest

from repro.obs.profile import SamplingProfiler, profile_for, top_view


def _spin(stop):
    # A busy Python loop so GIL-holding samples land on a frame in this
    # file with a recognisable function name.
    while not stop.is_set():
        sum(range(500))


@pytest.fixture
def busy_thread():
    stop = threading.Event()
    thread = threading.Thread(target=_spin, args=(stop,), daemon=True)
    thread.start()
    yield
    stop.set()
    thread.join(timeout=5.0)


def test_profiler_folds_busy_thread_stacks(busy_thread):
    profiler = SamplingProfiler(interval=0.002)
    with profiler:
        time.sleep(0.3)
    assert profiler.samples > 0
    assert profiler.duration > 0
    folded = profiler.folded()
    assert folded
    spin_stacks = [s for s in folded if "test_profile.py:_spin" in s]
    assert spin_stacks, sorted(folded)[:5]
    # stacks are root-first: the thread bootstrap frames precede _spin
    stack = spin_stacks[0].split(";")
    assert stack.index(
        [f for f in stack if f.endswith(":_spin")][0]
    ) > 0


def test_profile_for_is_synchronous_and_stopped(busy_thread):
    profiler = profile_for(0.2, interval=0.002)
    assert profiler.samples > 0
    payload = profiler.as_dict()
    assert set(payload) == {
        "interval",
        "samples",
        "duration",
        "pid",
        "folded",
        "top",
    }
    assert payload["duration"] >= 0.2
    assert payload["folded"]
    assert "frame" in payload["top"]


def test_folded_text_is_flamegraph_input(busy_thread):
    profiler = profile_for(0.2, interval=0.002)
    lines = profiler.folded_text().splitlines()
    assert lines
    for line in lines:
        stack, _, count = line.rpartition(" ")
        assert stack and int(count) > 0
    # sorted by count descending
    counts = [int(line.rpartition(" ")[2]) for line in lines]
    assert counts == sorted(counts, reverse=True)


def test_max_stacks_overflow_folds_into_other():
    profiler = SamplingProfiler(interval=0.01, max_stacks=1)
    profiler._counts["a.py:f"] = 1
    # the aggregation path routes new stacks beyond the cap to "(other)"
    own = threading.get_ident() + 1  # sample every thread incl. this one
    profiler._sample(own)
    folded = profiler.folded()
    assert set(folded) == {"a.py:f", "(other)"}
    assert folded["(other)"] >= 1


def test_top_view_self_and_total_attribution():
    folded = {
        "main.py:run;batch.py:solve": 6,
        "main.py:run;io.py:read": 2,
        "main.py:run": 2,
    }
    text = top_view(folded, samples=10, n=5)
    lines = text.splitlines()
    assert lines[0].split() == ["self%", "total%", "samples", "frame"]
    by_frame = {line.split()[-1]: line for line in lines[1:]}
    # batch.py:solve: 6 self, 6 total of 10 samples
    assert by_frame["batch.py:solve"].split()[:3] == [
        "60.0%",
        "60.0%",
        "6",
    ]
    # main.py:run: 2 self but on every stack -> 100% total
    assert by_frame["main.py:run"].split()[:3] == ["20.0%", "100.0%", "2"]


def test_interval_must_be_positive():
    with pytest.raises(ValueError):
        SamplingProfiler(interval=0.0)
