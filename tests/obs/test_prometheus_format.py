"""Prometheus text-exposition conformance for the stdlib registry.

The service's ``/metrics`` endpoint is scraped by real Prometheus
deployments, so the hand-rolled renderer must honour the text-format
contract: escaped label values, a terminal ``+Inf`` bucket, internally
consistent ``_bucket``/``_sum``/``_count`` triplets, and a render order
stable across scrapes (so scrape diffs are meaningful).
"""

import math
import re

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def _lines(registry):
    return registry.render().splitlines()


def test_label_value_escaping_is_unambiguous(registry):
    counter = registry.counter("esc_total", "E.", ("path",))
    counter.inc(path='quote " backslash \\ newline \n end')
    line = next(
        line for line in _lines(registry) if line.startswith("esc_total{")
    )
    value = re.search(r'path="(.*)"} 1$', line).group(1)
    assert value == 'quote \\" backslash \\\\ newline \\n end'
    # unescaping restores the original, so the encoding is lossless
    unescaped = (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )
    assert unescaped == 'quote " backslash \\ newline \n end'
    # the record stays a single physical line
    assert "\n" not in line


def test_histogram_ends_with_inf_bucket_equal_to_count(registry):
    histogram = registry.histogram("lat", "L.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    lines = _lines(registry)
    buckets = [line for line in lines if line.startswith("lat_bucket")]
    assert buckets[-1] == 'lat_bucket{le="+Inf"} 4'
    assert histogram.buckets[-1] == math.inf
    # cumulative and monotonic
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)


def test_bucket_sum_count_triplet_consistency_per_labelset(registry):
    histogram = registry.histogram(
        "req", "R.", ("path",), buckets=(0.1, 1.0)
    )
    observations = {
        "/damage": (0.05, 0.2, 2.0),
        "/jobs": (0.5,),
    }
    for path, values in observations.items():
        for value in values:
            histogram.observe(value, path=path)
    text = registry.render()
    for path, values in observations.items():
        inf = re.search(
            r'req_bucket\{path="%s", le="\+Inf"\} (\d+)' % path, text
        )
        count = re.search(r'req_count\{path="%s"\} (\d+)' % path, text)
        total = re.search(
            r'req_sum\{path="%s"\} ([0-9.eE+-]+)' % path, text
        )
        assert int(inf.group(1)) == len(values)
        assert int(count.group(1)) == len(values)
        assert float(total.group(1)) == pytest.approx(sum(values))


def test_render_order_is_stable_across_updates(registry):
    # register out of name order and interleave updates; scrapes must
    # render identical line order regardless
    gauge = registry.gauge("zz_depth", "Z.")
    counter = registry.counter("aa_total", "A.", ("kind",))
    counter.inc(kind="b")
    counter.inc(kind="a")
    gauge.set(1)
    first = _lines(registry)
    counter.inc(kind="a")
    gauge.set(2)
    second = _lines(registry)

    def shape(lines):
        return [line.rsplit(" ", 1)[0] for line in lines]

    assert shape(first) == shape(second)
    # metrics are name-sorted, samples label-sorted
    names = [
        line.split("{")[0].split()[0]
        for line in first
        if not line.startswith("#")
    ]
    assert names == sorted(names)
    a_lines = [line for line in first if line.startswith("aa_total{")]
    assert a_lines == sorted(a_lines)


def test_help_and_type_precede_samples(registry):
    registry.counter("c_total", "Help text.").inc()
    lines = _lines(registry)
    index = lines.index("# HELP c_total Help text.")
    assert lines[index + 1] == "# TYPE c_total counter"
    assert lines[index + 2] == "c_total 1"


def test_render_ends_with_newline(registry):
    registry.gauge("g", "G.").set(1)
    assert registry.render().endswith("\n")
