"""Structured logging: levels, ring buffer, capture, trace correlation."""

import json

import pytest

from repro.obs.log import (
    DEBUG,
    ERROR,
    INFO,
    WARNING,
    LogBuffer,
    LogRecord,
    capturing,
    configure_logging,
    current_log_buffer,
    disable_logging,
    get_logger,
    logging_configured,
    parse_level,
)
from repro.obs.trace import current_context, enable_tracing, root_span


def test_parse_level_accepts_names_numbers_and_none():
    assert parse_level("debug") == DEBUG
    assert parse_level("INFO") == INFO
    assert parse_level(" Warning ") == WARNING
    assert parse_level(ERROR) == ERROR
    assert parse_level(None) == INFO
    assert parse_level(None, default=0) == 0
    with pytest.raises(ValueError):
        parse_level("verbose")


def test_unconfigured_emits_one_stderr_line_for_info(capsys):
    disable_logging()
    assert not logging_configured()
    assert current_log_buffer() is None
    log = get_logger("unit")
    log.debug("hidden", detail=1)
    log.info("shown", port=8471)
    err = capsys.readouterr().err
    lines = [line for line in err.splitlines() if line.strip()]
    assert len(lines) == 1
    assert "INFO" in lines[0] and "unit:" in lines[0]
    assert "shown" in lines[0] and "port=8471" in lines[0]


def test_configured_retains_debug_and_echo_gates_stderr(capsys):
    buffer = LogBuffer()
    with capturing(buffer, level="debug", echo="error"):
        assert logging_configured()
        assert current_log_buffer() is buffer
        log = get_logger("unit")
        log.debug("kept quietly", k=1)
        log.info("also kept")
        log.error("loud")
    err = capsys.readouterr().err
    assert "loud" in err and "kept quietly" not in err
    messages = [r.message for r in buffer.records()]
    assert messages == ["kept quietly", "also kept", "loud"]


def test_buffer_level_gates_retention():
    buffer = LogBuffer()
    with capturing(buffer, level="warning"):
        log = get_logger("unit")
        log.debug("no")
        log.info("no")
        log.warning("yes")
    assert [r.message for r in buffer.records()] == ["yes"]


def test_records_filtering_newest_last():
    buffer = LogBuffer()
    with capturing(buffer):
        log_a = get_logger("alpha")
        log_b = get_logger("beta")
        log_a.info("one")
        log_b.warning("two")
        log_a.error("three")
    assert [r.message for r in buffer.records(level="warning")] == [
        "two",
        "three",
    ]
    assert [r.message for r in buffer.records(logger="alpha")] == [
        "one",
        "three",
    ]
    assert [r.message for r in buffer.records(limit=1)] == ["three"]


def test_ring_drops_oldest_and_counts_drops():
    buffer = LogBuffer(max_records=2)
    with capturing(buffer):
        log = get_logger("unit")
        for index in range(5):
            log.info(f"m{index}")
    assert len(buffer) == 2
    assert buffer.dropped == 3
    assert [r.message for r in buffer.records()] == ["m3", "m4"]
    buffer.clear()
    assert len(buffer) == 0 and buffer.dropped == 0


def test_trace_correlation_and_roundtrip():
    enable_tracing()
    buffer = LogBuffer()
    with capturing(buffer):
        log = get_logger("unit")
        with root_span("test.span"):
            context = current_context()
            log.info("inside", step=2)
    record = buffer.records()[-1]
    assert record.trace_id == context.trace_id
    assert record.span_id == context.span_id
    # as_dict -> from_dict is the cross-process shipping path
    payload = json.loads(json.dumps(record.as_dict()))
    clone = LogRecord.from_dict(payload)
    assert clone.message == "inside"
    assert clone.attrs == {"step": 2}
    assert clone.trace_id == record.trace_id
    assert clone.level == INFO
    line = clone.format_line()
    assert "inside" in line and "step=2" in line
    assert f"trace={record.trace_id[:8]}" in line


def test_ingest_adopts_shipped_records():
    buffer = LogBuffer()
    shipped = [
        {
            "ts": 1.0,
            "level": INFO,
            "logger": "worker",
            "message": "solved",
            "attrs": {"faults": 16},
            "trace_id": "t" * 32,
            "span_id": "s" * 16,
            "pid": 4242,
            "tid": 1,
            "thread": "MainThread",
        }
    ]
    assert buffer.ingest(shipped) == 1
    record = buffer.records(trace_id="t" * 32)[0]
    assert record.pid == 4242 and record.message == "solved"


def test_configure_logging_jsonl_tee(tmp_path):
    sink = tmp_path / "service.jsonl"
    buffer = configure_logging(level="info", echo=None, jsonl_path=str(sink))
    try:
        get_logger("unit").info("teed", n=3)
    finally:
        disable_logging()
    assert not logging_configured()
    assert [r.message for r in buffer.records()] == ["teed"]
    lines = sink.read_text().splitlines()
    assert len(lines) == 1
    payload = json.loads(lines[0])
    assert payload["message"] == "teed"
    assert payload["attrs"] == {"n": 3}
    assert payload["level_name"] == "INFO"


def test_capturing_restores_previous_config():
    outer = LogBuffer()
    with capturing(outer):
        with capturing(LogBuffer()):
            get_logger("unit").info("inner")
        get_logger("unit").info("outer")
        assert current_log_buffer() is outer
    assert [r.message for r in outer.records()] == ["outer"]


def test_log_buffer_rejects_empty_ring():
    with pytest.raises(ValueError):
        LogBuffer(max_records=0)
