"""Ring-buffer metrics history: sampling, rates, windowing, globals."""

import time

import pytest

from repro.obs.history import (
    MetricsHistory,
    current_history,
    disable_history,
    enable_history,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.resources import add_lane_bytes


@pytest.fixture
def registry():
    return MetricsRegistry()


def _series(payload, name):
    return [s for s in payload["series"] if s["name"] == name]


def test_sample_once_records_points_and_counts_series(registry):
    counter = registry.counter("reqs_total", "Requests.", ("path",))
    counter.inc(3, path="/damage")
    history = MetricsHistory(registry=registry, interval=1.0, window=8)
    live = history.sample_once(now=100.0)
    assert live >= 1
    rows = _series(history.as_dict(), "reqs_total")
    assert rows[0]["labels"] == {"path": "/damage"}
    assert rows[0]["points"] == [[100.0, 3.0]]


def test_counter_rate_is_per_second_positive_delta(registry):
    counter = registry.counter("n_total", "N.")
    history = MetricsHistory(registry=registry, interval=1.0, window=8)
    counter.inc(10)
    history.sample_once(now=100.0)
    counter.inc(5)
    history.sample_once(now=102.0)
    row = _series(history.as_dict(), "n_total")[0]
    assert row["rate"] == [[102.0, 2.5]]


def test_rate_clamps_resets_to_zero(registry):
    # A gauge-like reset (service restart) must not produce a negative
    # rate; the derivative clamps at zero.
    gauge = registry.gauge("depth", "D.")
    counter = registry.counter("c_total", "C.")
    counter.inc(10)
    history = MetricsHistory(registry=registry, interval=1.0, window=8)
    history.sample_once(now=1.0)
    counter._samples[()] = 2.0  # simulate a reset
    gauge.set(4)
    history.sample_once(now=2.0)
    row = _series(history.as_dict(), "c_total")[0]
    assert row["rate"] == [[2.0, 0.0]]
    # gauges carry raw points, never a rate
    assert "rate" not in _series(history.as_dict(), "depth")[0]


def test_histogram_points_carry_count_and_sum(registry):
    histogram = registry.histogram("lat", "L.", buckets=(1.0,))
    histogram.observe(0.5)
    histogram.observe(0.25)
    history = MetricsHistory(registry=registry, interval=1.0, window=8)
    history.sample_once(now=10.0)
    histogram.observe(0.5)
    history.sample_once(now=12.0)
    row = _series(history.as_dict(), "lat")[0]
    assert row["kind"] == "histogram"
    assert row["points"] == [[10.0, 2, 0.75], [12.0, 3, 1.25]]
    # rate derives from the cumulative count: one observation in 2 s
    assert row["rate"] == [[12.0, 0.5]]


def test_window_bounds_points(registry):
    counter = registry.counter("w_total", "W.")
    history = MetricsHistory(registry=registry, interval=1.0, window=3)
    for tick in range(10):
        counter.inc()
        history.sample_once(now=float(tick))
    row = _series(history.as_dict(), "w_total")[0]
    assert [p[0] for p in row["points"]] == [7.0, 8.0, 9.0]
    assert history.as_dict()["samples"] == 10


def test_as_dict_name_filter_and_points_cap(registry):
    a = registry.counter("a_total", "A.")
    registry.counter("b_total", "B.")
    history = MetricsHistory(registry=registry, interval=1.0, window=16)
    for tick in range(5):
        a.inc()
        history.sample_once(now=float(tick))
    only_a = history.as_dict(name="a_total")
    assert {s["name"] for s in only_a["series"]} == {"a_total"}
    capped = history.as_dict(name="a_total", points=2)["series"][0]
    assert len(capped["points"]) == 2
    assert capped["points"][-1][0] == 4.0


def test_process_series_fed_at_each_tick(registry):
    history = MetricsHistory(registry=registry, interval=1.0, window=8)
    add_lane_bytes(2 * 1024 * 1024)
    history.sample_once(now=1.0)
    names = history.series_names()
    assert "repro_process_rss_bytes" in names
    assert "repro_process_cpu_seconds_total" in names
    assert "repro_lane_bytes_total" in names
    rss = _series(history.as_dict(), "repro_process_rss_bytes")[0]
    assert rss["points"][0][1] > 0


def test_background_thread_start_stop(registry):
    registry.counter("bg_total", "BG.").inc()
    history = MetricsHistory(registry=registry, interval=0.01, window=32)
    assert not history.running
    history.start()
    try:
        assert history.running
        deadline = time.monotonic() + 5.0
        while (
            history.as_dict()["samples"] < 2
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert history.as_dict()["samples"] >= 2
    finally:
        history.stop()
    assert not history.running


def test_constructor_validation(registry):
    with pytest.raises(ValueError):
        MetricsHistory(registry=registry, interval=0.0)
    with pytest.raises(ValueError):
        MetricsHistory(registry=registry, window=1)


def test_enable_history_idempotent_and_disable(registry):
    disable_history()
    try:
        first = enable_history(
            interval=0.5, window=16, registry=registry, start=False
        )
        assert current_history() is first
        again = enable_history(
            interval=0.5, window=16, registry=registry, start=False
        )
        assert again is first
        replaced = enable_history(
            interval=0.25, window=16, registry=registry, start=False
        )
        assert replaced is not first
        assert current_history() is replaced
    finally:
        disable_history()
    assert current_history() is None
