"""Trace propagation across the execution boundaries of the stack.

Three hand-offs must preserve the parent chain: the job queue's worker
and attempt threads (context-vars do not cross threads), and the
engine's ProcessPool under both start methods — ``fork`` (workers
inherit state) and ``spawn`` (workers rebuild from a pickled payload);
in both cases the worker records into a private collector and ships
span dicts home with its results.
"""

import multiprocessing

import pytest

import repro.analysis.engine as engine_mod
import repro.obs.trace as trace_mod
from repro.bench import build_design
from repro.analysis import CriticalityEngine
from repro.obs import (
    SpanCollector,
    current_collector,
    disable_tracing,
    enable_tracing,
    root_span,
    span,
)
from repro.service.jobs import JobQueue, TransientJobError
from repro.spec import spec_for_network

TRACE = "f0" * 16


@pytest.fixture(autouse=True)
def _reset_tracing():
    disable_tracing()
    yield
    disable_tracing()


def _engine(**overrides):
    network = build_design("TreeFlat")
    spec = spec_for_network(network, seed=0)
    options = dict(jobs=2, min_parallel_primitives=1)
    options.update(overrides)
    return CriticalityEngine(network, spec, **options)


def _by_name(collector):
    spans = {}
    for record in collector.spans():
        spans.setdefault(record.name, []).append(record)
    return spans


# ---------------------------------------------------------------------------
# thread boundary: the job queue
# ---------------------------------------------------------------------------
class TestJobQueueBoundary:
    def test_job_spans_nest_under_the_submitting_trace(self):
        collector = enable_tracing(SpanCollector())
        queue = JobQueue(workers=1)
        try:
            with root_span("http.request", trace_id=TRACE) as root:
                job = queue.submit(
                    lambda job: 41 + 1, kind="analyze"
                )
            assert job.wait(timeout=10.0)
            assert job.result == 42
        finally:
            queue.shutdown(timeout=10.0)
        spans = _by_name(collector)
        (run,) = spans["job.run"]
        (attempt,) = spans["job.attempt"]
        assert run.trace_id == TRACE
        assert run.parent_id == root.context["span_id"]
        assert attempt.trace_id == TRACE
        assert attempt.parent_id == run.span_id
        assert attempt.attrs["kind"] == "analyze"

    def test_handler_spans_nest_under_the_attempt(self):
        collector = enable_tracing(SpanCollector())
        queue = JobQueue(workers=1)

        def handler(job):
            with span("handler.work"):
                return "done"

        try:
            with root_span("http.request", trace_id=TRACE):
                job = queue.submit(handler)
            assert job.wait(timeout=10.0)
        finally:
            queue.shutdown(timeout=10.0)
        spans = _by_name(collector)
        (attempt,) = spans["job.attempt"]
        (work,) = spans["handler.work"]
        assert work.trace_id == TRACE
        assert work.parent_id == attempt.span_id

    def test_retries_become_sibling_attempt_spans(self):
        collector = enable_tracing(SpanCollector())
        queue = JobQueue(workers=1, retry_backoff=0.0)
        calls = []

        def flaky(job):
            calls.append(job.attempts)
            if len(calls) == 1:
                raise TransientJobError("transient")
            return "ok"

        try:
            with root_span("http.request", trace_id=TRACE):
                job = queue.submit(flaky, max_retries=2)
            assert job.wait(timeout=10.0)
            assert job.result == "ok"
        finally:
            queue.shutdown(timeout=10.0)
        spans = _by_name(collector)
        (run,) = spans["job.run"]
        attempts = spans["job.attempt"]
        assert len(attempts) == 2
        assert {a.parent_id for a in attempts} == {run.span_id}
        assert [a.attrs["attempt"] for a in attempts] == [1, 2]
        assert attempts[0].status == "error"
        assert attempts[1].status == "ok"

    def test_untraced_submission_records_nothing(self):
        collector = enable_tracing(SpanCollector())
        queue = JobQueue(workers=1)
        try:
            job = queue.submit(lambda job: None)
            assert job.wait(timeout=10.0)
        finally:
            queue.shutdown(timeout=10.0)
        # No ambient trace at submit: the job still runs, and its spans
        # form their own trace rooted at job.run.
        spans = _by_name(collector)
        (run,) = spans["job.run"]
        (attempt,) = spans["job.attempt"]
        assert run.parent_id is None
        assert attempt.trace_id == run.trace_id


# ---------------------------------------------------------------------------
# process boundary: the engine pool (fork and spawn)
# ---------------------------------------------------------------------------
@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform has no fork start method",
)
class TestForkPool:
    def test_worker_chunk_spans_ship_home(self):
        collector = enable_tracing(SpanCollector())
        engine = _engine()
        with root_span("cli.analyze", trace_id=TRACE):
            engine.report()
        spans = _by_name(collector)
        (pool,) = spans["engine.pool"]
        assert pool.attrs["start_method"] == "fork"
        workers = spans["engine.worker_chunk"]
        assert workers  # at least one chunk crossed the pool
        assert {w.trace_id for w in workers} == {TRACE}
        assert {w.parent_id for w in workers} == {pool.span_id}
        # Shipped records really came from other processes.
        assert all(w.pid != pool.pid for w in workers)


class TestSpawnPool:
    def test_worker_chunk_spans_ship_home(self, monkeypatch):
        # Hide fork so the engine takes the spawn path (pickled payload
        # + worker-side rebuild) exactly as on Windows/macOS.
        monkeypatch.setattr(
            engine_mod.multiprocessing,
            "get_all_start_methods",
            lambda: ["spawn"],
        )
        collector = enable_tracing(SpanCollector())
        engine = _engine()
        with root_span("cli.analyze", trace_id=TRACE):
            engine.report()
        spans = _by_name(collector)
        (pool,) = spans["engine.pool"]
        assert pool.attrs["start_method"] == "spawn"
        workers = spans["engine.worker_chunk"]
        assert workers
        assert {w.trace_id for w in workers} == {TRACE}
        assert {w.parent_id for w in workers} == {pool.span_id}
        assert all(w.pid != pool.pid for w in workers)


class TestDisabledOverhead:
    def test_disabled_run_allocates_no_span_machinery(self, monkeypatch):
        """With tracing off, an instrumented end-to-end run must never
        construct a Span or a SpanRecord — the hot path pays only the
        ``_COLLECTOR is None`` check."""

        def bomb(*args, **kwargs):
            raise AssertionError(
                "span machinery allocated with tracing disabled"
            )

        monkeypatch.setattr(trace_mod, "Span", bomb)
        monkeypatch.setattr(trace_mod, "SpanRecord", bomb)
        engine = _engine(jobs=0)
        report = engine.report()
        assert report.total > 0
        assert current_collector() is None

    def test_disabled_span_calls_share_one_noop(self):
        first = span("batch.sweep", direction="forward")
        second = span("engine.analyze")
        assert first is second is trace_mod.NOOP_SPAN
