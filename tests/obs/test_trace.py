"""Core span mechanics: nesting, propagation carriers, the disabled path.

The zero-overhead contract is the critical one: with tracing disabled
(the default), ``span()`` must return the shared no-op singleton without
allocating anything — instrumented hot loops (the bitset sweep, the EA
generation loop) pay only a module-global ``is None`` check.
"""

import threading

import pytest

from repro.obs import (
    NOOP_SPAN,
    SpanCollector,
    SpanRecord,
    collecting,
    current_carrier,
    current_collector,
    disable_tracing,
    enable_tracing,
    root_span,
    span,
    tracing_enabled,
    use_carrier,
)


@pytest.fixture(autouse=True)
def _reset_tracing():
    """Every test starts and ends with tracing disabled."""
    disable_tracing()
    yield
    disable_tracing()


# ---------------------------------------------------------------------------
# disabled path
# ---------------------------------------------------------------------------
class TestDisabled:
    def test_disabled_is_the_default(self):
        assert not tracing_enabled()
        assert current_collector() is None

    def test_span_returns_shared_noop_singleton(self):
        # Identity, not just equality: no per-call allocation at all.
        for _ in range(100):
            assert span("engine.analyze", network="x") is NOOP_SPAN
        assert root_span("http.request") is NOOP_SPAN

    def test_noop_span_supports_the_span_protocol(self):
        with span("anything", key="value") as active:
            active.set_attribute("more", 1)
            assert active.context is None

    def test_no_carrier_without_an_active_span(self):
        assert current_carrier() is None

    def test_disabled_records_nothing(self):
        collector = SpanCollector()
        with span("a"):
            with span("b"):
                pass
        assert len(collector) == 0


# ---------------------------------------------------------------------------
# recording and nesting
# ---------------------------------------------------------------------------
class TestNesting:
    def test_parent_child_linkage(self):
        collector = enable_tracing(SpanCollector())
        with root_span("http.request", trace_id="t" * 32) as root:
            with span("service.damage") as mid:
                with span("batch.sweep"):
                    pass
        records = {r.name: r for r in collector.spans()}
        assert set(records) == {
            "http.request", "service.damage", "batch.sweep"
        }
        assert records["http.request"].trace_id == "t" * 32
        assert records["http.request"].parent_id is None
        assert records["service.damage"].parent_id == root.context["span_id"]
        assert records["batch.sweep"].parent_id == mid.context["span_id"]
        assert {r.trace_id for r in records.values()} == {"t" * 32}

    def test_children_close_before_parents_are_recorded(self):
        collector = enable_tracing(SpanCollector())
        with span("outer"):
            with span("inner"):
                pass
            assert [r.name for r in collector.spans()] == ["inner"]
        assert [r.name for r in collector.spans()] == ["inner", "outer"]

    def test_root_span_assigns_a_trace_id_when_missing(self):
        collector = enable_tracing(SpanCollector())
        with root_span("http.request"):
            pass
        (record,) = collector.spans()
        assert len(record.trace_id) == 32

    def test_sibling_spans_share_the_parent(self):
        collector = enable_tracing(SpanCollector())
        with root_span("root") as root:
            with span("first"):
                pass
            with span("second"):
                pass
        by_name = {r.name: r for r in collector.spans()}
        root_id = root.context["span_id"]
        assert by_name["first"].parent_id == root_id
        assert by_name["second"].parent_id == root_id

    def test_exception_marks_error_status(self):
        collector = enable_tracing(SpanCollector())
        with pytest.raises(ValueError):
            with span("engine.analyze"):
                raise ValueError("boom")
        (record,) = collector.spans()
        assert record.status == "error"
        assert record.attrs["error"] == "ValueError"

    def test_set_attribute_lands_in_the_record(self):
        collector = enable_tracing(SpanCollector())
        with span("engine.analyze", sites="all") as active:
            active.set_attribute("cache", "miss")
        (record,) = collector.spans()
        assert record.attrs == {"sites": "all", "cache": "miss"}

    def test_durations_are_positive_and_ordered(self):
        collector = enable_tracing(SpanCollector())
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r.name: r for r in collector.spans()}
        assert 0 <= by_name["inner"].duration <= by_name["outer"].duration


# ---------------------------------------------------------------------------
# carriers: thread and process hand-offs
# ---------------------------------------------------------------------------
class TestCarriers:
    def test_carrier_reflects_the_active_span(self):
        enable_tracing(SpanCollector())
        with root_span("root", trace_id="a" * 32) as root:
            carrier = current_carrier()
        assert carrier == {
            "trace_id": "a" * 32,
            "span_id": root.context["span_id"],
        }

    def test_use_carrier_joins_spans_across_threads(self):
        collector = enable_tracing(SpanCollector())
        with root_span("submit", trace_id="b" * 32) as root:
            carrier = current_carrier()

        def worker():
            with use_carrier(carrier):
                with span("worker.run"):
                    pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        by_name = {r.name: r for r in collector.spans()}
        assert by_name["worker.run"].trace_id == "b" * 32
        assert by_name["worker.run"].parent_id == root.context["span_id"]

    def test_use_carrier_none_is_a_noop(self):
        enable_tracing(SpanCollector())
        with use_carrier(None):
            assert current_carrier() is None

    def test_use_carrier_restores_the_previous_context(self):
        enable_tracing(SpanCollector())
        with root_span("outer", trace_id="c" * 32):
            before = current_carrier()
            with use_carrier({"trace_id": "d" * 32, "span_id": "e" * 16}):
                assert current_carrier()["trace_id"] == "d" * 32
            assert current_carrier() == before


# ---------------------------------------------------------------------------
# collector behaviour
# ---------------------------------------------------------------------------
class TestCollector:
    def test_bounded_never_grows_past_max(self):
        collector = enable_tracing(SpanCollector(max_spans=3))
        for index in range(10):
            with span(f"s{index}"):
                pass
        assert len(collector) == 3
        assert collector.dropped == 7

    def test_ingest_adopts_shipped_dicts(self):
        local = SpanCollector()
        with collecting(local):
            with root_span("worker", trace_id="f" * 32):
                pass
        shipped = [r.as_dict() for r in local.spans()]
        home = SpanCollector()
        assert home.ingest(shipped) == 1
        (record,) = home.spans()
        assert record.name == "worker"
        assert record.trace_id == "f" * 32

    def test_spans_filter_by_trace_id(self):
        collector = enable_tracing(SpanCollector())
        with root_span("one", trace_id="1" * 32):
            pass
        with root_span("two", trace_id="2" * 32):
            pass
        assert [r.name for r in collector.spans("1" * 32)] == ["one"]
        assert collector.trace_ids() == ["1" * 32, "2" * 32]

    def test_collecting_restores_the_previous_collector(self):
        outer = enable_tracing(SpanCollector())
        inner = SpanCollector()
        with collecting(inner):
            assert current_collector() is inner
            with span("inside"):
                pass
        assert current_collector() is outer
        assert len(inner) == 1
        assert len(outer) == 0

    def test_record_roundtrips_through_dict_form(self):
        collector = enable_tracing(SpanCollector())
        with root_span("roundtrip", trace_id="9" * 32, answer=42):
            pass
        (record,) = collector.spans()
        clone = SpanRecord.from_dict(record.as_dict())
        assert clone.as_dict() == record.as_dict()

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            SpanCollector(max_spans=0)
