"""Exporters: Chrome trace_event JSON round-trips, hot-path tree text."""

import json

import pytest

from repro.obs import (
    SpanCollector,
    chrome_trace_events,
    chrome_trace_json,
    disable_tracing,
    enable_tracing,
    hot_path_tree,
    root_span,
    span,
    write_chrome_trace,
)


@pytest.fixture(autouse=True)
def _reset_tracing():
    disable_tracing()
    yield
    disable_tracing()


@pytest.fixture
def collector():
    collector = enable_tracing(SpanCollector())
    with root_span("http.request", trace_id="a" * 32, method="POST"):
        with span("service.damage", faults=3):
            with span("batch.sweep", direction="forward"):
                pass
    with root_span("http.request", trace_id="b" * 32):
        pass
    return collector


class TestChromeExport:
    def test_json_round_trips(self, collector):
        document = json.loads(chrome_trace_json(collector))
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 4
        names = {e["name"] for e in complete}
        assert names == {"http.request", "service.damage", "batch.sweep"}

    def test_metadata_events_name_the_process(self, collector):
        events = chrome_trace_events(collector)
        meta = [e for e in events if e["ph"] == "M"]
        assert any(
            e["name"] == "process_name"
            and e["args"]["name"] == "service"
            for e in meta
        )
        assert any(e["name"] == "thread_name" for e in meta)

    def test_trace_filter_keeps_one_trace(self, collector):
        events = chrome_trace_events(collector, trace_id="a" * 32)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 3
        assert {e["args"]["trace_id"] for e in complete} == {"a" * 32}

    def test_timestamps_are_normalized_microseconds(self, collector):
        complete = [
            e
            for e in chrome_trace_events(collector, trace_id="a" * 32)
            if e["ph"] == "X"
        ]
        assert min(e["ts"] for e in complete) == 0.0
        assert all(e["dur"] >= 0 for e in complete)
        # Children nest inside their parent's interval.
        by_name = {e["name"]: e for e in complete}
        parent = by_name["http.request"]
        child = by_name["service.damage"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= (
            parent["ts"] + parent["dur"] + 1e-3
        )

    def test_span_args_carry_ids_and_attrs(self, collector):
        complete = [
            e for e in chrome_trace_events(collector) if e["ph"] == "X"
        ]
        damage = next(
            e for e in complete if e["name"] == "service.damage"
        )
        assert damage["args"]["faults"] == 3
        assert damage["args"]["parent_id"]
        assert damage["cat"] == "service"

    def test_empty_source_exports_no_events(self):
        assert chrome_trace_events(SpanCollector()) == []
        assert json.loads(chrome_trace_json([])) == {
            "traceEvents": [],
            "displayTimeUnit": "ms",
        }

    def test_write_returns_span_count_and_valid_json(
        self, collector, tmp_path
    ):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), collector, "a" * 32)
        assert count == 3
        document = json.loads(path.read_text())
        assert len(
            [e for e in document["traceEvents"] if e["ph"] == "X"]
        ) == 3


class TestHotPathTree:
    def test_tree_shows_nesting_and_percentages(self, collector):
        text = hot_path_tree(collector, "a" * 32)
        lines = text.splitlines()
        assert lines[0].startswith("http.request")
        assert "(100.0%)" in lines[0]
        assert lines[1].startswith("  service.damage")
        assert lines[2].startswith("    batch.sweep")
        assert "[direction=forward]" in lines[2]

    def test_error_spans_are_marked(self):
        collector = enable_tracing(SpanCollector())
        with pytest.raises(RuntimeError):
            with root_span("bad", trace_id="c" * 32):
                raise RuntimeError("nope")
        assert "!error" in hot_path_tree(collector)

    def test_orphan_spans_surface_as_roots(self):
        collector = SpanCollector()
        collector.ingest(
            [
                {
                    "name": "orphan",
                    "trace_id": "d" * 32,
                    "span_id": "1" * 16,
                    "parent_id": "f" * 16,  # parent never recorded
                    "start": 0.0,
                    "duration": 0.5,
                }
            ]
        )
        assert hot_path_tree(collector).startswith("orphan")

    def test_empty_trace_has_a_placeholder(self):
        assert hot_path_tree(SpanCollector()) == "(no spans)"
