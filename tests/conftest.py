"""Shared fixtures: reference networks used across the test-suite."""

from __future__ import annotations

import pytest

from repro.bench.generators import fig1_example
from repro.rsn import RsnBuilder
from repro.sp import decompose
from repro.spec import CriticalitySpec


@pytest.fixture
def fig1_network():
    """The paper's running example (Figs. 1-4)."""
    return fig1_example()


@pytest.fixture
def fig1_tree(fig1_network):
    return decompose(fig1_network)


@pytest.fixture
def fig1_spec():
    """Deterministic weights for the example's five instruments."""
    return CriticalitySpec(
        {f"i{k}": (float(k), float(10 + k)) for k in range(1, 6)}
    )


@pytest.fixture
def chain_network():
    """Three plain segments in series — no mux at all."""
    builder = RsnBuilder("chain")
    builder.segment("s1", length=2, instrument="a")
    builder.segment("s2", length=3, instrument="b")
    builder.segment("s3", length=1, instrument="c")
    return builder.build()


@pytest.fixture
def sib_network():
    """One SIB hosting two segments, one plain segment outside."""
    builder = RsnBuilder("single_sib")
    builder.segment("pre", length=2, instrument="outside")
    with builder.sib("sib0"):
        builder.segment("in1", length=2, instrument="first")
        builder.segment("in2", length=3, instrument="second")
    return builder.build()


@pytest.fixture
def nested_sib_network():
    """Two-level SIB nesting (MBIST-like)."""
    builder = RsnBuilder("nested")
    with builder.sib("outer"):
        builder.segment("top", length=1, instrument="i_top")
        with builder.sib("inner"):
            builder.segment("deep1", length=2, instrument="i_deep1")
            builder.segment("deep2", length=2, instrument="i_deep2")
    return builder.build()


@pytest.fixture
def mux3_network():
    """A 3-branch mux with one bypass wire branch."""
    builder = RsnBuilder("mux3")
    with builder.mux("m") as mux:
        with mux.branch():
            builder.segment("x", length=2, instrument="ix")
        with mux.branch():
            pass  # bypass
        with mux.branch():
            builder.segment("y", length=1, instrument="iy")
    return builder.build()


@pytest.fixture
def shared_cell_network():
    """One control cell driving two muxes (shared select)."""
    builder = RsnBuilder("shared")
    builder.control_cell("sel", length=1)
    with builder.mux("mA", control="sel") as mux:
        with mux.branch():
            builder.segment("a0", length=1, instrument="ia0")
        with mux.branch():
            builder.segment("a1", length=1, instrument="ia1")
    with builder.mux("mB", control="sel") as mux:
        with mux.branch():
            builder.segment("b0", length=1, instrument="ib0")
        with mux.branch():
            builder.segment("b1", length=1, instrument="ib1")
    return builder.build()
