"""Unit and property tests for the compiled array-backed network IR."""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.errors import UnknownNodeError
from repro.ir import (
    MUX,
    SEGMENT,
    CompiledNetwork,
    IR_VERSION,
    compile_network,
    fingerprint_payload,
    intern,
)
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import SegmentRole
from repro.spec import random_spec

seeds = st.integers(min_value=0, max_value=20_000)


def _network(seed=3):
    return elaborate(random_network(seed=seed, max_depth=2, max_items=3))


def _mux_pair(flipped: bool) -> RsnNetwork:
    """Two structurally identical networks except for the order in which
    the mux inputs were wired — i.e. which source drives which port."""
    net = RsnNetwork("pair")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment("sel", role=SegmentRole.CONTROL)
    net.add_fanout("f")
    net.add_segment("a", instrument="ia")
    net.add_segment("b", instrument="ib")
    net.add_mux("m", fanin=2, control_cell="sel")
    edges = [("scan_in", "sel"), ("sel", "f"), ("f", "a"), ("f", "b")]
    edges += [("b", "m"), ("a", "m")] if flipped else [("a", "m"), ("b", "m")]
    edges += [("m", "scan_out")]
    for edge in edges:
        net.add_edge(*edge)
    net.validate()
    return net


class TestIntern:
    def test_intern_memoizes_per_network_object(self):
        network = _network()
        assert intern(network) is intern(network)

    def test_compile_builds_fresh_objects(self):
        network = _network()
        assert compile_network(network) is not compile_network(network)

    def test_intern_recompiles_after_growth(self):
        network = _network()
        before = intern(network)
        network.add_segment("late_segment")
        network.add_edge("scan_in", "late_segment")
        after = intern(network)
        assert after is not before
        assert after.n_nodes == before.n_nodes + 1


class TestStructureParity:
    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_adjacency_matches_dict_graph(self, seed):
        network = _network(seed)
        compiled = intern(network)
        for name in network.node_names():
            node_id = compiled.id_of(name)
            assert tuple(
                compiled.names[s] for s in compiled.successors(node_id)
            ) == network.successors(name)
            assert tuple(
                compiled.names[p] for p in compiled.predecessors(node_id)
            ) == network.predecessors(name)

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_succ_ports_pair_with_pred_slots(self, seed):
        """succ_ports[slot] names the position of that edge occurrence in
        the destination's predecessor row — the mux port it drives."""
        network = _network(seed)
        compiled = intern(network)
        consumed = {}
        for src in range(compiled.n_nodes):
            lo = compiled.succ_indptr[src]
            hi = compiled.succ_indptr[src + 1]
            for slot in range(lo, hi):
                dst = compiled.succ_indices[slot]
                port = compiled.succ_ports[slot]
                assert compiled.mux_port_source(dst, port) == src
                # each (dst, port) pred slot is claimed exactly once
                assert (dst, port) not in consumed
                consumed[(dst, port)] = src
        assert len(consumed) == compiled.n_edges

    @settings(max_examples=25, deadline=None)
    @given(seed=seeds)
    def test_topological_order_is_valid(self, seed):
        compiled = intern(_network(seed))
        position = {v: i for i, v in enumerate(compiled.topo)}
        assert sorted(position) == list(range(compiled.n_nodes))
        for src in range(compiled.n_nodes):
            for dst in compiled.successors(src):
                assert position[src] < position[dst]

    def test_kind_codes_and_attributes(self):
        network = _mux_pair(flipped=False)
        compiled = intern(network)
        assert compiled.kinds[compiled.id_of("m")] == MUX
        assert compiled.kinds[compiled.id_of("a")] == SEGMENT
        assert compiled.fanin[compiled.id_of("m")] == 2
        assert compiled.control_cell[compiled.id_of("m")] == (
            compiled.id_of("sel")
        )
        assert list(compiled.stuck_values(compiled.id_of("m"))) == [0, 1]
        assert compiled.scan_in == compiled.id_of(network.scan_in)
        assert compiled.scan_out == compiled.id_of(network.scan_out)

    def test_primitive_ids_are_segments_and_muxes(self):
        network = _network()
        compiled = intern(network)
        names = {compiled.names[i] for i in compiled.primitive_ids()}
        expected = {
            node.name
            for node in network.nodes()
            if node.kind.name in ("SEGMENT", "MUX")
        }
        assert names == expected

    def test_unknown_name_raises(self):
        compiled = intern(_network())
        with pytest.raises(UnknownNodeError):
            compiled.id_of("no_such_node")

    def test_bad_mux_port_raises(self):
        compiled = intern(_mux_pair(flipped=False))
        with pytest.raises(UnknownNodeError):
            compiled.mux_port_source(compiled.id_of("m"), 2)


class TestFingerprint:
    def test_stable_across_rebuilds(self):
        assert (
            intern(_network(7)).fingerprint
            == compile_network(_network(7)).fingerprint
        )

    def test_differs_between_networks(self):
        assert intern(_network(1)).fingerprint != intern(
            _network(2)
        ).fingerprint

    def test_sensitive_to_mux_port_order(self):
        """Swapping which source drives which mux port is a different
        network (different selected paths) and must never share a
        fingerprint — the pre-IR edges()-based payload missed this."""
        straight = _mux_pair(flipped=False)
        flipped = _mux_pair(flipped=True)
        assert (
            fingerprint_payload(straight) != fingerprint_payload(flipped)
        )
        assert (
            intern(straight).fingerprint != intern(flipped).fingerprint
        )

    def test_folds_ir_version(self):
        import repro.ir.compiled as compiled_mod

        network = _network()
        original = compile_network(network).fingerprint
        old_version = compiled_mod.IR_VERSION
        compiled_mod.IR_VERSION = old_version + ".test"
        try:
            assert compile_network(network).fingerprint != original
        finally:
            compiled_mod.IR_VERSION = old_version
        assert IR_VERSION == old_version


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_to_network_reproduces_fingerprint(self, seed):
        compiled = intern(_network(seed))
        rebuilt = compiled.to_network()
        rebuilt.validate()
        assert intern(rebuilt).fingerprint == compiled.fingerprint

    def test_to_network_preserves_mux_port_order(self):
        rebuilt = intern(_mux_pair(flipped=True)).to_network()
        assert rebuilt.predecessors("m") == ("b", "a")

    def test_pickle_round_trip(self):
        compiled = intern(_network(11))
        clone = pickle.loads(pickle.dumps(compiled))
        assert isinstance(clone, CompiledNetwork)
        assert clone.fingerprint == compiled.fingerprint
        assert clone.names == compiled.names
        assert list(clone.succ_indices) == list(compiled.succ_indices)
        assert intern(clone.to_network()).fingerprint == (
            compiled.fingerprint
        )

    def test_frozen_after_build_and_unpickle(self):
        compiled = intern(_network())
        with pytest.raises(AttributeError):
            compiled.scan_in = 0
        clone = pickle.loads(pickle.dumps(compiled))
        with pytest.raises(AttributeError):
            clone.names = ()


class TestWeights:
    @settings(max_examples=20, deadline=None)
    @given(seed=seeds)
    def test_weight_vectors_align_with_spec(self, seed):
        network = _network(seed)
        spec = random_spec(network.instrument_names(), seed=seed)
        compiled = intern(network)
        do_w, ds_w = compiled.weight_vectors(spec)
        assert len(do_w) == len(ds_w) == compiled.n_nodes
        by_segment = {}
        for instrument in network.instruments():
            by_segment[instrument.segment] = spec.weight(instrument.name)
        for node_id, name in enumerate(compiled.names):
            expected = by_segment.get(name, (0.0, 0.0))
            assert (do_w[node_id], ds_w[node_id]) == expected
