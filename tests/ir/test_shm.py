"""Shared-memory shipping of compiled networks (`repro.ir.shm`).

Pack/attach round-trip fidelity (every array field and every metadata
field), zero-copy semantics of the attached views, the refcounted
owner-side segment lifecycle, and the pickle fallback transport.
"""

import pickle

import pytest

from repro.bench import build_design
from repro.errors import ReproError
from repro.ir import intern
from repro.ir.shm import (
    ShmSegment,
    ShmUnavailable,
    attach,
    detach,
    pack,
    receive,
    ship,
    shm_available,
)
from repro.ir.shm import _ARRAY_FIELDS, _META_FIELDS

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable on this host"
)


@pytest.fixture(scope="module")
def ir():
    return intern(build_design("TreeUnbalanced"))


class TestRoundTrip:
    def test_arrays_and_meta_survive(self, ir):
        segment = pack(ir)
        try:
            other, shm = attach(segment.name)
            try:
                for slot, _code in _ARRAY_FIELDS:
                    assert list(getattr(other, slot)) == list(
                        getattr(ir, slot)
                    ), slot
                for slot in _META_FIELDS:
                    assert getattr(other, slot) == getattr(ir, slot), slot
                assert other.n_nodes == ir.n_nodes
                assert other.id_of(ir.names[0]) == 0
            finally:
                detach(other, shm)
        finally:
            segment.unlink()

    def test_attached_fields_are_zero_copy_views(self, ir):
        segment = pack(ir)
        try:
            other, shm = attach(segment.name)
            try:
                # int fields come back as memoryviews over the shared
                # pages, not copies.
                assert isinstance(other.succ_indices, memoryview)
                assert isinstance(other.topo, memoryview)
                assert other.succ_indices.obj is not None
                # ... and numpy can wrap them without copying either.
                np = pytest.importorskip("numpy")
                arr = np.frombuffer(other.succ_indices, dtype=np.int32)
                assert not arr.flags["OWNDATA"]
                assert list(arr) == list(ir.succ_indices)
                del arr
            finally:
                detach(other, shm)
        finally:
            segment.unlink()

    def test_attached_ir_rebuilds_same_network(self, ir):
        segment = pack(ir)
        try:
            other, shm = attach(segment.name)
            try:
                rebuilt = other.to_network()
                assert intern(rebuilt).fingerprint == ir.fingerprint
            finally:
                detach(other, shm)
        finally:
            segment.unlink()

    def test_attach_unknown_name_raises(self):
        with pytest.raises(ShmUnavailable):
            attach("repro-ir-does-not-exist")


class TestSegmentLifecycle:
    def test_refcount_unlinks_at_zero(self, ir):
        segment = pack(ir)
        segment.acquire()
        segment.acquire()
        assert segment.refs == 2
        segment.release()
        assert not segment.closed
        # The name still resolves while one reference is held.
        other, shm = attach(segment.name)
        detach(other, shm)
        segment.release()
        assert segment.closed
        with pytest.raises(ShmUnavailable):
            attach(segment.name)

    def test_acquire_after_unlink_raises(self, ir):
        segment = pack(ir)
        segment.unlink()
        with pytest.raises(ReproError):
            segment.acquire()

    def test_unlink_is_idempotent(self, ir):
        segment = pack(ir)
        segment.unlink()
        segment.unlink()
        assert segment.refs == 0

    def test_release_without_acquire_unlinks(self, ir):
        segment = pack(ir)
        segment.release()
        assert segment.closed


class TestShipReceive:
    def test_shm_transport_round_trip(self, ir):
        transport, payload = ship(ir, prefer_shm=True)
        assert transport == "shm"
        assert isinstance(payload, ShmSegment)
        assert payload.refs == 1
        other, shm = receive(transport, payload.name)
        try:
            assert other.fingerprint == ir.fingerprint
            assert list(other.topo) == list(ir.topo)
        finally:
            detach(other, shm)
            payload.release()

    def test_pickle_fallback_round_trip(self, ir):
        transport, payload = ship(ir, prefer_shm=False)
        assert transport == "pickle"
        assert isinstance(payload, bytes)
        other, shm = receive(transport, payload)
        assert shm is None
        assert other.fingerprint == ir.fingerprint
        assert list(other.succ_indptr) == list(ir.succ_indptr)

    def test_unknown_transport_raises(self):
        with pytest.raises(ReproError):
            receive("carrier-pigeon", b"")

    def test_attached_ir_does_not_pickle(self, ir):
        # memoryview fields are process-local: shipping an *attached* IR
        # onward is a bug, and it fails loudly.
        segment = pack(ir)
        try:
            other, shm = attach(segment.name)
            try:
                with pytest.raises(TypeError):
                    pickle.dumps(other)
            finally:
                detach(other, shm)
        finally:
            segment.unlink()
