"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in (
            "NetworkError",
            "ValidationError",
            "DuplicateNameError",
            "UnknownNodeError",
            "BuilderError",
            "IclFormatError",
            "NotSeriesParallelError",
            "SpecificationError",
            "SimulationError",
            "RetargetingError",
            "OptimizationError",
            "BenchmarkError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError), name

    def test_retargeting_is_simulation_error(self):
        assert issubclass(errors.RetargetingError, errors.SimulationError)

    def test_validation_is_network_error(self):
        assert issubclass(errors.ValidationError, errors.NetworkError)


class TestPayloads:
    def test_validation_error_collects_problems(self):
        exc = errors.ValidationError(["a broke", "b broke"])
        assert exc.problems == ["a broke", "b broke"]
        assert "a broke; b broke" in str(exc)

    def test_icl_error_line_prefix(self):
        exc = errors.IclFormatError("bad token", line=17)
        assert exc.line == 17
        assert str(exc).startswith("line 17:")

    def test_icl_error_without_line(self):
        exc = errors.IclFormatError("bad token")
        assert exc.line is None
        assert str(exc) == "bad token"

    def test_not_sp_error_blocked_edges(self):
        exc = errors.NotSeriesParallelError("stuck", [("a", "b")])
        assert exc.blocked_edges == [("a", "b")]

    def test_single_catch_at_api_boundary(self, fig1_network):
        from repro.analysis import analyze_damage
        from repro.spec import uniform_spec

        with pytest.raises(errors.ReproError):
            analyze_damage(
                fig1_network,
                uniform_spec(fig1_network.instrument_names()),
                method="nope",
            )
