"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestDesigns:
    def test_lists_registry(self, capsys):
        assert main(["designs"]) == 0
        out = capsys.readouterr().out
        assert "TreeFlat" in out
        assert "MBIST_5_100_100" in out


class TestExample:
    def test_walkthrough(self, capsys):
        assert main(["example"]) == 0
        out = capsys.readouterr().out
        assert "stuck-at-1 fault of m0" in out
        assert "['i1', 'i2', 'i3']" in out


class TestAnalyze:
    def test_registry_design(self, capsys):
        assert main(["analyze", "TreeFlat"]) == 0
        out = capsys.readouterr().out
        assert "total damage" in out
        assert "24 / 24" in out

    def test_network_file(self, tmp_path, capsys):
        path = tmp_path / "net.rsn"
        path.write_text(
            "network filetest\n"
            "  segment s length=4 instrument=temp\n"
            "  sib s0\n"
            "    segment t length=2 instrument=core\n"
        )
        assert main(["analyze", str(path)]) == 0
        out = capsys.readouterr().out
        assert "filetest" in out


class TestHarden:
    def test_harden_small_design(self, capsys):
        assert main(
            ["harden", "TreeFlat", "--generations", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "min damage @ cost<=10%" in out

    def test_harden_with_spots(self, capsys):
        assert main(
            [
                "harden",
                "TreeFlat",
                "--generations",
                "30",
                "--show-spots",
                "3",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "harden " in out


class TestTable1:
    def test_single_design_json(self, tmp_path, capsys):
        json_path = tmp_path / "rows.json"
        code = main(
            [
                "table1",
                "--designs",
                "TreeFlat",
                "--scale-generations",
                "0.1",
                "--compare",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        rows = json.loads(json_path.read_text())
        assert rows[0]["design"] == "TreeFlat"
        out = capsys.readouterr().out
        assert "cost%@dmg<=10% paper" in out

    def test_unknown_design_rejected(self, capsys):
        assert main(["table1", "--designs", "Ghost"]) == 2
        assert "unknown designs" in capsys.readouterr().err


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


class TestStats:
    def test_stats_command(self, capsys):
        assert main(["stats", "TreeBalanced"]) == 0
        out = capsys.readouterr().out
        assert "kill_concentration" in out
        assert "hierarchy_depth" in out


class TestExport:
    def test_export_roundtrip(self, tmp_path, capsys):
        from repro.bench import get_design
        from repro.rsn import icl

        out = tmp_path / "tree_flat.rsn"
        assert main(["export", "TreeFlat", str(out)]) == 0
        assert icl.load(out) == get_design("TreeFlat").generate()


class TestHardenVariants:
    def test_nsga2_algorithm(self, capsys):
        assert main(
            [
                "harden",
                "TreeFlat",
                "--generations",
                "20",
                "--algorithm",
                "nsga2",
            ]
        ) == 0
        assert "front" in capsys.readouterr().out

    def test_analyze_top_parameter(self, capsys):
        assert main(["analyze", "TreeFlat", "--top", "3", "--no-cache"]) == 0
        out = capsys.readouterr().out
        # exactly three unit lines under the header
        lines = out.splitlines()
        header = lines.index("most critical hardening units:")
        assert len(lines) - header - 1 == 3


class TestEngineCli:
    def test_analyze_stats_block(self, capsys):
        assert main(["analyze", "TreeFlat", "--no-cache", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "engine stats" in out
        assert "faults/s" in out
        assert "result cache   : disabled" in out

    def test_analyze_cache_hit_on_second_run(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["analyze", "TreeFlat", "--stats"]) == 0
        first = capsys.readouterr().out
        assert "result cache   : miss" in first
        assert main(["analyze", "TreeFlat", "--stats"]) == 0
        second = capsys.readouterr().out
        assert "result cache   : hit" in second
        # the cached report prints the same numbers
        assert (
            first.split("engine stats")[0]
            == second.split("engine stats")[0]
        )

    def test_analyze_parallel_jobs(self, capsys):
        assert main(
            ["analyze", "q12710", "--no-cache", "--jobs", "2", "--stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "workers        : 2" in out

    def test_analyze_explicit_method(self, capsys):
        assert main(
            ["analyze", "TreeFlat", "--no-cache", "--method", "explicit"]
        ) == 0
        assert "total damage" in capsys.readouterr().out

    def test_table1_stats_line(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(
            [
                "table1",
                "--designs",
                "TreeFlat",
                "--scale-generations",
                "0.05",
                "--stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "analysis" in out
        assert "cache miss" in out


class TestCampaign:
    def test_montecarlo_table(self, capsys):
        assert main(
            [
                "campaign", "montecarlo", "TreeFlat",
                "--rates", "0.01,0.05", "--samples", "60",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign         : montecarlo" in out
        assert "0.05000" in out
        assert "completed" in out

    def test_montecarlo_json_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "mc.json"
        assert main(
            [
                "campaign", "montecarlo", "TreeFlat",
                "--rates", "0.02", "--samples", "40",
                "--output", str(artifact),
            ]
        ) == 0
        payload = json.loads(artifact.read_text())
        assert payload["kind"] == "montecarlo"
        assert payload["records"][0]["complete"]
        assert "wrote" in capsys.readouterr().out

    def test_montecarlo_checkpoint_resume(self, tmp_path, capsys):
        checkpoint = tmp_path / "mc.jsonl"
        argv = [
            "campaign", "montecarlo", "TreeFlat",
            "--rates", "0.02", "--samples", "64",
            "--block-lanes", "16",
            "--checkpoint", str(checkpoint),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "(4 resumed)" in capsys.readouterr().out

    def test_kfault_summary(self, capsys):
        assert main(
            ["campaign", "kfault", "TreeFlat", "-k", "2", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign         : kfault" in out
        assert "worst combinations:" in out

    def test_kfault_budget_truncates(self, capsys):
        assert main(
            [
                "campaign", "kfault", "TreeFlat",
                "-k", "2", "--max-combinations", "50",
            ]
        ) == 0
        assert "(truncated)" in capsys.readouterr().out

    def test_diagnose_summary(self, capsys):
        assert main(
            [
                "campaign", "diagnose", "TreeFlat",
                "--observations", "50",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign         : diagnosis" in out
        assert "rank-1 accuracy" in out
        assert "resolution" in out

    def test_scalar_sampler_flag(self, capsys):
        assert main(
            [
                "campaign", "montecarlo", "TreeFlat",
                "--rates", "0.05", "--samples", "30",
                "--sampler", "scalar", "--bootstrap", "0",
            ]
        ) == 0
        assert "montecarlo" in capsys.readouterr().out

    def test_bad_rates_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "campaign", "montecarlo", "TreeFlat",
                    "--rates", "not-a-rate",
                ]
            )


class TestTop:
    @pytest.fixture()
    def live_url(self):
        import threading

        from repro.service import AnalysisService, make_server

        service = AnalysisService(no_cache=True, history_interval=0.05)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        # let the sampler tick at least once so the frame has data
        service.history.sample_once()
        yield f"http://{host}:{port}"
        service.close(drain=False, timeout=10.0)
        server.shutdown()
        thread.join(timeout=10.0)
        server.server_close()

    def test_once_renders_single_frame(self, live_url, capsys):
        assert main(["top", "--once", "--url", live_url]) == 0
        out = capsys.readouterr().out
        assert "repro-rsn top" in out
        assert "requests/s" in out
        assert "job queue" in out
        assert "\x1b[2J" not in out  # no clear escape on a single frame

    def test_iterations_renders_n_frames(self, live_url, capsys):
        assert main(
            [
                "top", "--url", live_url,
                "--iterations", "2", "--interval", "0.05",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("repro-rsn top") == 2
        assert "\x1b[2J" in out  # frames after the first clear the screen

    def test_unreachable_service_exits_one(self, capsys):
        assert (
            main(
                [
                    "top", "--once",
                    "--url", "http://127.0.0.1:1",
                    "--timeout", "0.5",
                ]
            )
            == 1
        )
        assert "top:" in capsys.readouterr().err

    def test_top_rejects_bad_flags(self):
        with pytest.raises(SystemExit):
            main(["top", "--interval", "0"])
        with pytest.raises(SystemExit):
            main(["top", "--log-lines", "-1"])


class TestServeTelemetryFlags:
    def test_serve_flags_reach_the_service(self, monkeypatch):
        import repro.service as service_module

        captured = {}

        def fake_serve(**kwargs):
            captured.update(kwargs)
            return 0

        monkeypatch.setattr(service_module, "serve", fake_serve)
        assert (
            main(
                [
                    "serve", "--frontend", "thread",
                    "--history-interval", "0.25",
                    "--history-window", "64",
                    "--log-level", "warning",
                    "--log-json", "/tmp/svc.jsonl",
                ]
            )
            == 0
        )
        assert captured["history_interval"] == 0.25
        assert captured["history_window"] == 64
        assert captured["log_level"] == "warning"
        assert captured["log_jsonl"] == "/tmp/svc.jsonl"

    def test_history_interval_zero_allowed_negative_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--history-interval", "-1"])
        with pytest.raises(SystemExit):
            main(["serve", "--history-window", "0"])
        with pytest.raises(SystemExit):
            main(["serve", "--log-level", "verbose"])
