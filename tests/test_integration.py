"""End-to-end integration tests tying all subsystems together."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_damage
from repro.analysis.faults import MuxStuck
from repro.bench import build_design, get_design
from repro.bench.generators import random_network
from repro.core import SelectiveHardening
from repro.rsn import icl
from repro.rsn.ast import elaborate
from repro.sim import Retargeter, ScanSimulator, structural_access
from repro.sp import decompose
from repro.spec import spec_for_network


class TestFullPipelineOnBenchmark:
    @pytest.fixture(scope="class")
    def outcome(self):
        network = build_design("TreeUnbalanced")
        synthesis = SelectiveHardening(network, seed=0)
        result = synthesis.optimize(generations=120, population_size=60)
        return network, synthesis, result

    def test_counts_match_registry(self, outcome):
        network, _, _ = outcome
        info = get_design("TreeUnbalanced")
        assert network.counts() == (info.n_segments, info.n_muxes)

    def test_hardening_reduces_damage_cheaply(self, outcome):
        _, synthesis, result = outcome
        solution = result.min_cost_solution(0.10)
        assert solution is not None
        # the headline shape: a strict fraction of the full-hardening
        # cost removes 90 % of the damage (how small depends on how
        # concentrated the network's damage profile is)
        assert solution.cost_fraction < 0.7

    def test_min_damage_within_budget(self, outcome):
        _, synthesis, result = outcome
        solution = result.min_damage_solution(0.10)
        assert solution is not None
        assert solution.damage_fraction < 1.0

    def test_hardened_spots_cover_top_critical_units(self, outcome):
        _, synthesis, result = outcome
        solution = result.min_cost_solution(0.10)
        top_units = [
            name for name, _ in synthesis.report.most_critical_units(3)
        ]
        assert set(top_units) <= set(solution.hardened)

    def test_front_dominates_random_selections(self, outcome):
        _, synthesis, result = outcome
        from repro.core.baselines import random_selection
        from repro.ea import dominates

        problem = synthesis.problem
        _, front = result.front()
        for seed in range(5):
            genome = random_selection(
                problem, 0.3 * problem.max_cost, seed=seed
            )
            point = problem.evaluate(genome[None, :])[0]
            assert any(
                dominates(front_point, point) or tuple(front_point) == tuple(point)
                for front_point in front
            )


class TestAnalysisMatchesSimulationOnBenchmark:
    def test_soc_style_mux_faults(self):
        """Oracle-vs-analysis on an SoC-style network small enough for the
        exponential configuration enumeration (2^8 configs per fault)."""
        from repro.bench.generators import soc_mux_network
        from repro.rsn.ast import elaborate as build

        network = build(soc_mux_network(18, 8, seed=4))
        tree = decompose(network)
        from repro.analysis.effects import mux_stuck_effect

        instruments = set(network.instrument_names())
        for mux in (m.name for m in network.muxes()):
            for port in (0, 1):
                effect = mux_stuck_effect(tree, mux, port)
                unobs, unset = effect.lost_instruments(network)
                access = structural_access(
                    network,
                    faults=[MuxStuck(mux, port)],
                )
                assert instruments - access.observable == unobs
                assert instruments - access.settable == unset


class TestRetargetingOnBenchmark:
    def test_every_treeflat_instrument_reachable(self):
        network = build_design("TreeFlat")
        simulator = ScanSimulator(network)
        retargeter = Retargeter(simulator)
        for instrument in network.instrument_names()[:8]:
            segment = network.instrument(instrument).segment
            width = network.node(segment).length
            pattern = [k % 2 for k in range(width)]
            retargeter.write_instrument(instrument, pattern)
            assert retargeter.read_instrument(instrument) == pattern


class TestPersistenceRoundtrip:
    def test_generated_design_survives_icl(self, tmp_path):
        decl = get_design("TreeBalanced").generate()
        path = tmp_path / "tree_balanced.rsn"
        icl.dump(decl, path)
        reloaded = icl.load(path)
        assert reloaded == decl
        network = elaborate(reloaded)
        spec = spec_for_network(network, seed=0)
        direct_spec = spec_for_network(
            elaborate(decl), seed=0
        )
        assert spec == direct_spec
        report_a = analyze_damage(network, spec)
        report_b = analyze_damage(elaborate(decl), spec)
        assert report_a.total == pytest.approx(report_b.total)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2_000))
def test_random_network_full_stack(seed):
    """Generate -> persist -> analyze -> optimize -> extract, end to end."""
    decl = random_network(seed=seed, max_depth=2, max_items=3)
    network = elaborate(icl.loads(icl.dumps(decl)))
    synthesis = SelectiveHardening(network, seed=seed)
    result = synthesis.optimize(generations=15, population_size=12)
    assert len(result.objectives) >= 1
    exact = synthesis.exact_front()
    # EA points never dominate the *non-dominated* supported points (the
    # raw prefix list may end with zero-damage candidates whose prefixes
    # are themselves dominated)
    from repro.ea import dominates

    _, supported_front = exact.front()
    for point in result.objectives:
        for supported in supported_front:
            assert not dominates(point, supported)
