"""Unit tests for the exact / greedy / random baselines."""

import numpy as np
import pytest

from repro.analysis import analyze_damage
from repro.core import baselines
from repro.core.problem import HardeningProblem
from repro.ea import dominates
from repro.spec import GateCountCost, spec_for_network


@pytest.fixture
def problem(fig1_network):
    spec = spec_for_network(fig1_network, seed=3)
    report = analyze_damage(fig1_network, spec)
    return HardeningProblem(fig1_network, report, GateCountCost())


class TestRatioOrder:
    def test_permutation(self, problem):
        order = baselines.ratio_order(problem)
        assert sorted(order) == list(range(problem.n_vars))

    def test_descending_ratio(self, problem):
        order = baselines.ratio_order(problem)
        ratios = problem.damages[order] / problem.costs[order]
        assert all(
            ratios[k] >= ratios[k + 1] - 1e-12
            for k in range(len(ratios) - 1)
        )


class TestSupportedFront:
    def test_endpoints(self, problem):
        _, points = baselines.supported_front(problem)
        assert points[0][0] == 0.0
        assert points[0][1] == problem.max_damage
        assert points[-1][0] == pytest.approx(problem.max_cost)
        assert points[-1][1] == pytest.approx(problem.floor_damage)

    def test_cost_increasing_damage_decreasing(self, problem):
        _, points = baselines.supported_front(problem)
        assert (np.diff(points[:, 0]) >= -1e-12).all()
        assert (np.diff(points[:, 1]) <= 1e-12).all()

    def test_prefix_genome_matches_point(self, problem):
        order, points = baselines.supported_front(problem)
        for length in (0, 1, problem.n_vars // 2, problem.n_vars):
            genome = baselines.genome_of_prefix(problem, order, length)
            cost, damage = problem.evaluate_one(genome)
            assert cost == pytest.approx(points[length][0])
            assert damage == pytest.approx(points[length][1])

    def test_supported_points_are_pareto_optimal(self, problem):
        """No random selection may dominate a supported point."""
        _, points = baselines.supported_front(problem)
        rng = np.random.default_rng(0)
        genomes = rng.random((300, problem.n_vars)) < rng.random((300, 1))
        objectives = problem.evaluate(genomes)
        for point in points[:: max(1, len(points) // 8)]:
            for row in objectives:
                assert not dominates(row, point)


class TestGreedyMinCost:
    def test_meets_damage_cap(self, problem):
        cap = 0.10 * problem.max_damage
        genome = baselines.greedy_min_cost(problem, cap)
        assert genome is not None
        _, damage = problem.evaluate_one(genome)
        assert damage <= cap + 1e-9

    def test_infeasible_cap_returns_none(self, problem):
        impossible = problem.floor_damage - 1.0
        if impossible < 0:
            pytest.skip("floor damage is zero for this network")
        assert baselines.greedy_min_cost(problem, impossible) is None

    def test_trivial_cap_hardens_nothing(self, problem):
        genome = baselines.greedy_min_cost(problem, problem.max_damage)
        assert genome is not None
        assert genome.sum() == 0

    def test_polish_never_violates_cap(self, problem):
        for fraction in (0.05, 0.2, 0.5, 0.9):
            cap = fraction * problem.max_damage
            genome = baselines.greedy_min_cost(problem, cap)
            if genome is None:
                continue
            _, damage = problem.evaluate_one(genome)
            assert damage <= cap + 1e-9


class TestGreedyMinDamage:
    def test_respects_budget(self, problem):
        for fraction in (0.05, 0.1, 0.3):
            budget = fraction * problem.max_cost
            genome = baselines.greedy_min_damage(problem, budget)
            cost, _ = problem.evaluate_one(genome)
            assert cost <= budget + 1e-9

    def test_beats_random_on_average(self, problem):
        budget = 0.15 * problem.max_cost
        greedy_genome = baselines.greedy_min_damage(problem, budget)
        _, greedy_damage = problem.evaluate_one(greedy_genome)
        random_damages = []
        for seed in range(10):
            random_genome = baselines.random_selection(
                problem, budget, seed=seed
            )
            _, damage = problem.evaluate_one(random_genome)
            random_damages.append(damage)
        assert greedy_damage <= np.mean(random_damages)

    def test_zero_budget_hardens_nothing(self, problem):
        genome = baselines.greedy_min_damage(problem, 0.0)
        assert genome.sum() == 0


class TestRandomSelection:
    def test_budget_respected(self, problem):
        budget = 0.2 * problem.max_cost
        genome = baselines.random_selection(problem, budget, seed=1)
        cost, _ = problem.evaluate_one(genome)
        assert cost <= budget + 1e-9

    def test_deterministic_in_seed(self, problem):
        budget = 0.2 * problem.max_cost
        first = baselines.random_selection(problem, budget, seed=2)
        second = baselines.random_selection(problem, budget, seed=2)
        assert (first == second).all()


class TestWholeNetworkComparators:
    def test_full_tmr_is_max_cost(self, problem):
        assert baselines.full_tmr_cost(problem) == problem.max_cost

    def test_fault_tolerant_overhead_positive(self, fig1_network):
        assert baselines.fault_tolerant_overhead(fig1_network) > 0

    def test_selective_hardening_cheaper_than_alternatives(self, problem):
        """The paper's pitch: the 10%-damage selective solution costs far
        less than protecting everything."""
        cap = 0.10 * problem.max_damage
        genome = baselines.greedy_min_cost(problem, cap)
        assert genome is not None
        cost, _ = problem.evaluate_one(genome)
        assert cost < 0.8 * baselines.full_tmr_cost(problem)


class TestExactParetoFront:
    def test_points_match_genomes(self, problem):
        from repro.core.baselines import exact_pareto_front

        genomes, points = exact_pareto_front(problem)
        for genome, (cost, damage) in zip(genomes, points):
            got_cost, got_damage = problem.evaluate_one(genome)
            assert got_cost == pytest.approx(cost)
            assert got_damage == pytest.approx(damage)

    def test_front_is_mutually_nondominated(self, problem):
        from repro.core.baselines import exact_pareto_front
        from repro.ea import domination_matrix

        _, points = exact_pareto_front(problem)
        assert not domination_matrix(points).any()

    def test_contains_every_supported_point(self, problem):
        """Supported (ratio-prefix) Pareto points are a subset of the
        complete DP front."""
        from repro.core.baselines import (
            exact_pareto_front,
            supported_front,
        )
        from repro.ea import dedupe_front

        _, dp_points = exact_pareto_front(problem)
        _, prefix_points = supported_front(problem)
        supported = prefix_points[dedupe_front(prefix_points)]
        dp_set = {tuple(p) for p in dp_points}
        for cost, damage in supported:
            # the DP must reach the same damage at cost <= the supported
            # point's cost
            assert any(
                c <= cost + 1e-9 and d <= damage + 1e-9
                for c, d in dp_points
            )

    def test_dominates_or_matches_greedy(self, problem):
        from repro.core.baselines import exact_pareto_front, greedy_min_cost

        _, dp_points = exact_pareto_front(problem)
        cap = 0.10 * problem.max_damage
        greedy = greedy_min_cost(problem, cap)
        g_cost, _ = problem.evaluate_one(greedy)
        best_dp = min(
            cost for cost, damage in dp_points if damage <= cap + 1e-9
        )
        assert best_dp <= g_cost + 1e-9

    def test_non_integer_costs_rejected(self, fig1_network):
        from repro.analysis import analyze_damage
        from repro.core.baselines import exact_pareto_front
        from repro.core.problem import HardeningProblem
        from repro.spec import PerBitCost, spec_for_network

        spec = spec_for_network(fig1_network, seed=3)
        report = analyze_damage(fig1_network, spec)
        problem_frac = HardeningProblem(
            fig1_network, report, PerBitCost(per_bit=0.5)
        )
        with pytest.raises(Exception):
            exact_pareto_front(problem_frac)

    def test_state_space_guard(self, problem):
        from repro.core.baselines import exact_pareto_front
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            exact_pareto_front(problem, max_states=10)
