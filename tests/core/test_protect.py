"""Unit tests for the critical-instrument protection extension."""

import numpy as np
import pytest

from repro.analysis import analyze_damage
from repro.core import (
    SelectiveHardening,
    critical_threat_sites,
    protect_critical_instruments,
)
from repro.core.problem import HardeningProblem
from repro.spec import CriticalitySpec, UniformCost


@pytest.fixture
def fig1_setup(fig1_network):
    spec = CriticalitySpec(
        {
            "i1": (100.0, 100.0),
            "i2": (1.0, 1.0),
            "i3": (1.0, 1.0),
            "i4": (1.0, 1.0),
            "i5": (1.0, 1.0),
        },
        critical_observation=["i1"],
        critical_control=["i1"],
    )
    report = analyze_damage(fig1_network, spec)
    problem = HardeningProblem(fig1_network, report, UniformCost())
    return fig1_network, spec, problem


class TestThreatSites:
    def test_threats_include_own_segment_and_ancestor_muxes(
        self, fig1_setup
    ):
        network, spec, _ = fig1_setup
        threats = critical_threat_sites(network, spec)
        # i1 lives on segment 'a' behind m1 -> m0 -> m2
        assert {"a", "m1", "m0", "m2"} <= threats

    def test_sibling_branch_not_a_threat(self, fig1_setup):
        network, spec, _ = fig1_setup
        threats = critical_threat_sites(network, spec)
        assert "d" not in threats
        assert "g" not in threats

    def test_downstream_spine_is_a_threat(self, fig1_setup):
        """c2 sits between m1 and m0 on i1's read-out path: its break cuts
        i1's observability."""
        network, spec, _ = fig1_setup
        threats = critical_threat_sites(network, spec)
        assert "c2" in threats

    def test_no_criticals_no_threats(self, fig1_network):
        spec = CriticalitySpec(
            {name: (1.0, 1.0) for name in fig1_network.instrument_names()}
        )
        assert critical_threat_sites(fig1_network, spec) == set()


class TestProtection:
    def test_protected_solution_verifies(self, fig1_setup):
        network, spec, problem = fig1_setup
        solution, uncoverable = protect_critical_instruments(problem, spec)
        assert not uncoverable
        ok, offending = solution.verify_critical(spec)
        assert ok, offending

    def test_base_solution_extended_not_replaced(self, fig1_setup):
        network, spec, problem = fig1_setup
        base = np.zeros(problem.n_vars, dtype=bool)
        base[problem.candidates.index("g")] = True
        solution, _ = protect_critical_instruments(
            problem, spec, base_genome=base
        )
        assert "g" in solution.hardened

    def test_every_added_spot_is_necessary(self, fig1_setup):
        """Dropping any added candidate re-exposes a critical."""
        network, spec, problem = fig1_setup
        solution, _ = protect_critical_instruments(problem, spec)
        for position in np.flatnonzero(solution.genome):
            reduced = solution.genome.copy()
            reduced[position] = False
            weakened = solution.problem
            from repro.core.result import HardeningSolution

            candidate = HardeningSolution(weakened, reduced)
            ok, _ = candidate.verify_critical(spec)
            assert not ok

    def test_control_only_mode_reports_uncoverable(self, fig1_network):
        spec = CriticalitySpec(
            {
                "i1": (100.0, 100.0),
                "i4": (1.0, 1.0),
            },
            critical_observation=["i1"],
        )
        report = analyze_damage(fig1_network, spec)
        problem = HardeningProblem(
            fig1_network, report, UniformCost(), hardenable="control"
        )
        _, uncoverable = protect_critical_instruments(problem, spec)
        # i1's own segment 'a' (and the spine segment c2) are threats no
        # control unit covers
        assert "a" in uncoverable

    def test_integration_with_ea_front(self, fig1_network):
        synthesis = SelectiveHardening(fig1_network, seed=4)
        result = synthesis.optimize(generations=40, population_size=24)
        base = result.min_damage_solution(0.3)
        solution, uncoverable = protect_critical_instruments(
            synthesis.problem, synthesis.spec, base_genome=base.genome
        )
        assert not uncoverable
        ok, _ = solution.verify_critical(synthesis.spec)
        assert ok
        assert solution.cost >= base.cost


class TestProtectionProperties:
    def test_protection_sound_on_random_networks(self):
        # inline property loop (explicit seeds keep runtime bounded)
        from repro.bench.generators import random_network
        from repro.rsn.ast import elaborate
        from repro.spec import spec_for_network

        for seed in range(12):
            network = elaborate(
                random_network(seed=seed, max_depth=2, max_items=3)
            )
            spec = spec_for_network(network, seed=seed)
            synthesis = SelectiveHardening(network, spec=spec, seed=seed)
            solution, uncoverable = protect_critical_instruments(
                synthesis.problem, spec
            )
            assert not uncoverable
            ok, offending = solution.verify_critical(spec)
            assert ok, (seed, offending)
