"""Unit tests for HardeningResult / HardeningSolution."""

import numpy as np
import pytest

from repro.analysis import analyze_damage
from repro.core.problem import HardeningProblem
from repro.core.result import HardeningResult, HardeningSolution
from repro.spec import UniformCost, spec_for_network


@pytest.fixture
def setup(fig1_network):
    spec = spec_for_network(fig1_network, seed=1)
    report = analyze_damage(fig1_network, spec)
    problem = HardeningProblem(fig1_network, report, UniformCost())
    genomes = np.zeros((3, problem.n_vars), dtype=bool)
    genomes[1, :2] = True
    genomes[2, :] = True
    result = HardeningResult(problem, genomes, problem.evaluate(genomes))
    return problem, result, spec


class TestHardeningSolution:
    def test_fields(self, setup):
        problem, result, _ = setup
        genome = np.zeros(problem.n_vars, dtype=bool)
        genome[0] = True
        solution = HardeningSolution(problem, genome, label="demo")
        assert solution.n_hardened == 1
        assert solution.cost == 1.0
        assert solution.hardened == [problem.candidates[0]]
        assert "demo" in repr(solution)

    def test_fractions(self, setup):
        problem, _, _ = setup
        genome = np.ones(problem.n_vars, dtype=bool)
        solution = HardeningSolution(problem, genome)
        assert solution.cost_fraction == pytest.approx(1.0)
        assert solution.damage_fraction == pytest.approx(
            problem.floor_damage / problem.max_damage
        )

    def test_hardened_units_filters_segments(self, setup):
        problem, _, _ = setup
        genome = np.ones(problem.n_vars, dtype=bool)
        solution = HardeningSolution(problem, genome)
        unit_names = set(problem.network.unit_names())
        assert set(solution.hardened_units()) == unit_names
        assert len(solution.hardened) > len(solution.hardened_units())


class TestExtractions:
    def test_min_cost_picks_cheapest_feasible(self, setup):
        problem, result, _ = setup
        # full hardening reaches zero damage; the 2-spot genome may not
        solution = result.min_cost_solution(damage_fraction=0.0001)
        assert solution is not None
        assert solution.n_hardened == problem.n_vars

    def test_min_cost_none_when_unreachable(self, setup):
        problem, result, _ = setup
        impossible = -1.0  # no point has negative damage
        assert result.min_cost_solution(damage_fraction=impossible) is None

    def test_min_damage_respects_budget(self, setup):
        problem, result, _ = setup
        fraction = 2.5 / problem.n_vars
        solution = result.min_damage_solution(cost_fraction=fraction)
        assert solution is not None
        assert solution.cost <= fraction * problem.max_cost

    def test_min_damage_none_on_empty_budget(self, setup):
        problem, result, _ = setup
        # the zero genome has cost 0, so a tiny budget still admits it
        solution = result.min_damage_solution(cost_fraction=0.0)
        assert solution is not None
        assert solution.n_hardened == 0

    def test_front_deduped_and_sorted(self, setup):
        _, result, _ = setup
        _, objs = result.front()
        assert (np.diff(objs[:, 0]) > 0).all()


class TestSerialization:
    def test_solution_to_dict_roundtrips_json(self, setup):
        import json

        problem, result, _ = setup
        genome = np.zeros(problem.n_vars, dtype=bool)
        genome[:3] = True
        solution = HardeningSolution(problem, genome, label="x")
        data = json.loads(json.dumps(solution.to_dict()))
        assert data["label"] == "x"
        assert len(data["hardened"]) == 3
        assert data["cost"] == 3.0

    def test_result_to_dict(self, setup):
        import json

        problem, result, _ = setup
        data = json.loads(json.dumps(result.to_dict()))
        assert data["max_cost"] == problem.max_cost
        assert len(data["front"]) >= 1
        assert data["min_cost_solution"] is not None
