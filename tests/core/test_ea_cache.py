"""The EA run cache: identical table1/optimize reruns must replay the
stored archive instead of re-evolving (the cache key folds the EA
parameters in, so a seed or budget change is never served stale)."""

import numpy as np
import pytest

from repro.bench.table1 import run_design
from repro.core.hardening import SelectiveHardening
from repro.ea.spea2 import SPEA2
from repro.spec import spec_for_network


def _harden(network, spec, cache_dir):
    return SelectiveHardening(
        network, spec=spec, seed=0, cache_dir=str(cache_dir)
    )


@pytest.fixture(scope="module")
def design():
    from repro.bench import build_design

    network = build_design("TreeFlat")
    return network, spec_for_network(network, seed=0)


def test_table1_rerun_hits_ea_cache(tmp_path):
    first = run_design(
        "TreeFlat",
        generations=2,
        population_size=16,
        cache_dir=str(tmp_path),
        with_greedy=False,
    )
    second = run_design(
        "TreeFlat",
        generations=2,
        population_size=16,
        cache_dir=str(tmp_path),
        with_greedy=False,
    )
    assert first.ea_cache == "miss"
    assert second.ea_cache == "hit"
    assert second.min_cost_cost == first.min_cost_cost
    assert second.min_cost_damage == first.min_cost_damage
    assert second.min_damage_cost == first.min_damage_cost
    assert second.min_damage_damage == first.min_damage_damage
    assert second.front_size == first.front_size


def test_cache_hit_replays_identical_front(tmp_path, design):
    network, spec = design
    synthesis = _harden(network, spec, tmp_path)
    first = synthesis.optimize(generations=2, population_size=16, seed=3)
    assert synthesis.last_ea_cache == "miss"

    replay = _harden(network, spec, tmp_path)
    second = replay.optimize(generations=2, population_size=16, seed=3)
    assert replay.last_ea_cache == "hit"
    assert np.array_equal(second.genomes, first.genomes)
    assert np.array_equal(second.objectives, first.objectives)


def test_cache_hit_skips_reevolution(tmp_path, design, monkeypatch):
    network, spec = design
    synthesis = _harden(network, spec, tmp_path)
    synthesis.optimize(generations=2, population_size=16, seed=0)

    def explode(self, *args, **kwargs):
        raise AssertionError("cache hit must not re-run the EA")

    monkeypatch.setattr(SPEA2, "run", explode)
    replay = _harden(network, spec, tmp_path)
    replay.optimize(generations=2, population_size=16, seed=0)
    assert replay.last_ea_cache == "hit"


@pytest.mark.parametrize(
    "changed",
    [
        {"seed": 1},
        {"population_size": 18},
        {"generations": 3},
        {"p_mutation": 0.05},
        {"algorithm": "nsga2"},
    ],
)
def test_changed_ea_parameters_miss(tmp_path, design, changed):
    network, spec = design
    base = dict(generations=2, population_size=16, seed=0)
    _harden(network, spec, tmp_path).optimize(**base)

    synthesis = _harden(network, spec, tmp_path)
    synthesis.optimize(**{**base, **changed})
    assert synthesis.last_ea_cache == "miss"


def test_early_stop_disables_cache(tmp_path, design):
    network, spec = design
    synthesis = _harden(network, spec, tmp_path)
    synthesis.optimize(
        generations=2,
        population_size=16,
        early_stop=lambda history: False,
    )
    assert synthesis.last_ea_cache == "disabled"


def test_no_cache_dir_disables_cache(design):
    network, spec = design
    synthesis = SelectiveHardening(network, spec=spec, seed=0)
    synthesis.optimize(generations=2, population_size=16)
    assert synthesis.last_ea_cache == "disabled"


def test_corrupt_cache_entry_degrades_to_miss(tmp_path, design):
    network, spec = design
    synthesis = _harden(network, spec, tmp_path)
    synthesis.optimize(generations=2, population_size=16, seed=0)
    for entry in tmp_path.glob("ea-*.json"):
        entry.write_text("{not json")

    replay = _harden(network, spec, tmp_path)
    result = replay.optimize(generations=2, population_size=16, seed=0)
    assert replay.last_ea_cache == "miss"
    assert len(result.objectives) > 0
