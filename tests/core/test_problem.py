"""Unit tests for the hardening optimization problem."""

import numpy as np
import pytest

from repro.analysis import analyze_damage
from repro.core.problem import HardeningProblem
from repro.errors import OptimizationError
from repro.spec import GateCountCost, UniformCost


@pytest.fixture
def fig1_problem(fig1_network, fig1_spec):
    report = analyze_damage(fig1_network, fig1_spec)
    return HardeningProblem(fig1_network, report, GateCountCost())


class TestCandidates:
    def test_all_mode_includes_units_and_segments(
        self, fig1_network, fig1_spec
    ):
        report = analyze_damage(fig1_network, fig1_spec)
        problem = HardeningProblem(
            fig1_network, report, UniformCost(), hardenable="all"
        )
        names = set(problem.candidates)
        assert set(fig1_network.unit_names()) <= names
        assert {"a", "b", "c2", "d", "g"} <= names

    def test_control_mode_units_only(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        problem = HardeningProblem(
            fig1_network, report, UniformCost(), hardenable="control"
        )
        assert set(problem.candidates) == set(fig1_network.unit_names())

    def test_unknown_mode_rejected(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        with pytest.raises(OptimizationError):
            HardeningProblem(
                fig1_network, report, UniformCost(), hardenable="some"
            )

    def test_chain_without_muxes_still_has_segment_candidates(
        self, chain_network
    ):
        from repro.spec import uniform_spec

        spec = uniform_spec(chain_network.instrument_names())
        report = analyze_damage(chain_network, spec)
        problem = HardeningProblem(
            chain_network, report, UniformCost(), hardenable="all"
        )
        assert problem.n_vars == 3

    def test_chain_control_mode_rejected(self, chain_network):
        from repro.spec import uniform_spec

        spec = uniform_spec(chain_network.instrument_names())
        report = analyze_damage(chain_network, spec)
        with pytest.raises(OptimizationError):
            HardeningProblem(
                chain_network, report, UniformCost(), hardenable="control"
            )


class TestEvaluation:
    def test_empty_selection(self, fig1_problem):
        genome = np.zeros(fig1_problem.n_vars, dtype=bool)
        cost, damage = fig1_problem.evaluate_one(genome)
        assert cost == 0.0
        assert damage == fig1_problem.max_damage

    def test_full_selection(self, fig1_problem):
        genome = np.ones(fig1_problem.n_vars, dtype=bool)
        cost, damage = fig1_problem.evaluate_one(genome)
        assert cost == pytest.approx(fig1_problem.max_cost)
        assert damage == pytest.approx(fig1_problem.floor_damage)

    def test_fig1_floor_is_zero_with_all_hardenable(self, fig1_problem):
        assert fig1_problem.floor_damage == pytest.approx(0.0)

    def test_batch_matches_single(self, fig1_problem):
        rng = np.random.default_rng(0)
        genomes = rng.random((7, fig1_problem.n_vars)) < 0.5
        batch = fig1_problem.evaluate(genomes)
        for row, genome in zip(batch, genomes):
            assert tuple(row) == pytest.approx(
                fig1_problem.evaluate_one(genome)
            )

    def test_chunked_evaluation_consistent(self, fig1_problem):
        rng = np.random.default_rng(1)
        genomes = rng.random((11, fig1_problem.n_vars)) < 0.5
        full = fig1_problem.evaluate(genomes)
        original = HardeningProblem._CHUNK_FLOATS
        try:
            HardeningProblem._CHUNK_FLOATS = fig1_problem.n_vars * 2
            chunked = fig1_problem.evaluate(genomes)
        finally:
            HardeningProblem._CHUNK_FLOATS = original
        assert np.allclose(full, chunked)

    def test_wrong_shape_rejected(self, fig1_problem):
        with pytest.raises(OptimizationError):
            fig1_problem.evaluate(np.zeros((2, 3), dtype=bool))

    def test_damage_monotone_in_selection(self, fig1_problem):
        genome = np.zeros(fig1_problem.n_vars, dtype=bool)
        _, previous = fig1_problem.evaluate_one(genome)
        for index in range(fig1_problem.n_vars):
            genome[index] = True
            _, current = fig1_problem.evaluate_one(genome)
            assert current <= previous + 1e-9
            previous = current


class TestGenomeNaming:
    def test_roundtrip(self, fig1_problem):
        names = [fig1_problem.candidates[0], fig1_problem.candidates[-1]]
        genome = fig1_problem.genome_of(names)
        assert set(fig1_problem.selected_names(genome)) == set(names)

    def test_unknown_candidate_rejected(self, fig1_problem):
        with pytest.raises(OptimizationError):
            fig1_problem.genome_of(["ghost"])
