"""Unit and integration tests for the SelectiveHardening flow."""

import numpy as np
import pytest

from repro.core import SelectiveHardening, default_population_size
from repro.ea import dominates
from repro.errors import OptimizationError
from repro.spec import CriticalitySpec, UniformCost, spec_for_network


@pytest.fixture
def synthesis(fig1_network):
    return SelectiveHardening(fig1_network, seed=3)


class TestConstruction:
    def test_defaults(self, synthesis, fig1_network):
        assert synthesis.network is fig1_network
        assert synthesis.max_cost > 0
        assert synthesis.max_damage > 0

    def test_report_cached(self, synthesis):
        assert synthesis.report is synthesis.report

    def test_spec_defaults_to_paper_random(self, fig1_network):
        auto = SelectiveHardening(fig1_network, seed=9)
        expected = spec_for_network(fig1_network, seed=9)
        assert auto.spec == expected

    def test_population_rule(self, fig1_network):
        assert default_population_size(fig1_network) == 100

    def test_population_rule_large(self):
        from repro.bench.designs import build_design

        network = build_design("p34392")  # 142 muxes
        assert default_population_size(network) == 300


class TestOptimize:
    def test_spea2_run(self, synthesis):
        result = synthesis.optimize(generations=40, population_size=24)
        assert len(result.objectives) > 0
        assert result.runtime_seconds > 0
        assert result.ea_result.algorithm == "spea2"

    def test_nsga2_run(self, synthesis):
        result = synthesis.optimize(
            generations=40, population_size=24, algorithm="nsga2"
        )
        assert result.ea_result.algorithm == "nsga2"

    def test_unknown_algorithm_rejected(self, synthesis):
        with pytest.raises(OptimizationError):
            synthesis.optimize(generations=5, algorithm="anneal")

    def test_front_has_cheap_and_robust_ends(self, synthesis):
        result = synthesis.optimize(generations=80, population_size=40)
        _, objs = result.front()
        assert objs[0][0] < 0.2 * synthesis.max_cost
        assert objs[-1][1] < 0.5 * synthesis.max_damage

    def test_deterministic(self, fig1_network):
        first = SelectiveHardening(fig1_network, seed=2).optimize(
            generations=20, population_size=16
        )
        second = SelectiveHardening(fig1_network, seed=2).optimize(
            generations=20, population_size=16
        )
        assert np.array_equal(first.objectives, second.objectives)


class TestExactAndGreedy:
    def test_exact_front_endpoints(self, synthesis):
        exact = synthesis.exact_front()
        _, points = exact.front()
        assert points[0][0] == 0.0
        assert points[-1][1] == pytest.approx(
            synthesis.problem.floor_damage
        )

    def test_ea_front_not_dominating_exact(self, synthesis):
        """Non-dominated supported points are Pareto-optimal: the EA can
        match but never dominate them."""
        exact = synthesis.exact_front()
        _, exact_front = exact.front()
        result = synthesis.optimize(generations=60, population_size=40)
        for ea_point in result.objectives:
            for exact_point in exact_front:
                assert not dominates(ea_point, exact_point)

    def test_ea_close_to_exact_on_small_network(self, synthesis):
        """On a 10-candidate-scale problem the EA should essentially find
        the supported front."""
        exact = synthesis.exact_front()
        result = synthesis.optimize(generations=150, population_size=60)
        min_cost_exact = exact.min_cost_solution(0.10)
        min_cost_ea = result.min_cost_solution(0.10)
        assert min_cost_ea is not None
        assert min_cost_ea.cost <= 1.3 * min_cost_exact.cost + 5

    def test_greedy_result_solutions(self, synthesis):
        greedy = synthesis.greedy_result()
        min_cost = greedy.min_cost_solution(0.10)
        assert min_cost is not None
        assert min_cost.damage <= 0.10 * synthesis.max_damage + 1e-9
        min_damage = greedy.min_damage_solution(0.10)
        assert min_damage is not None
        assert min_damage.cost <= 0.10 * synthesis.max_cost + 1e-9


class TestHardenableModes:
    def test_control_mode_has_fewer_candidates(self, fig1_network):
        all_mode = SelectiveHardening(fig1_network, seed=1)
        control_mode = SelectiveHardening(
            fig1_network, seed=1, hardenable="control"
        )
        assert control_mode.problem.n_vars < all_mode.problem.n_vars

    def test_control_mode_floor_is_segment_damage(self, fig1_network):
        control_mode = SelectiveHardening(
            fig1_network, seed=1, hardenable="control"
        )
        assert control_mode.problem.floor_damage == pytest.approx(
            control_mode.report.unavoidable
        )

    def test_cost_model_override(self, fig1_network):
        uniform = SelectiveHardening(
            fig1_network, seed=1, cost_model=UniformCost()
        )
        assert uniform.max_cost == uniform.problem.n_vars


class TestSolutions:
    def test_solution_properties(self, synthesis):
        result = synthesis.optimize(generations=60, population_size=40)
        solution = result.min_damage_solution(0.15)
        assert solution is not None
        assert solution.n_hardened == len(solution.hardened)
        assert 0 <= solution.cost_fraction <= 1
        assert 0 <= solution.damage_fraction <= 1

    def test_min_cost_none_when_infeasible(self, fig1_network):
        spec = CriticalitySpec(
            {name: (1.0, 1.0) for name in fig1_network.instrument_names()}
        )
        synthesis = SelectiveHardening(
            fig1_network, spec=spec, hardenable="control", seed=1
        )
        result = synthesis.optimize(generations=20, population_size=16)
        # segment damage floor makes <=1% residual damage unreachable
        assert result.min_cost_solution(0.01) is None

    def test_verify_critical_with_full_hardening(self, synthesis):
        result = synthesis.optimize(generations=30, population_size=16)
        genome = np.ones(synthesis.problem.n_vars, dtype=bool)
        everything = result.solution(genome, label="all")
        ok, offending = everything.verify_critical(synthesis.spec)
        assert ok, offending


class TestTopologyPreservation:
    """Sec. V: 'The RSN topology is not affected by the presented method' —
    the synthesis must never mutate the network, so every pre-existing
    access pattern keeps working unchanged."""

    def test_network_untouched_by_synthesis(self, fig1_network):
        before_nodes = sorted(fig1_network.node_names())
        before_edges = sorted(fig1_network.edges())
        synthesis = SelectiveHardening(fig1_network, seed=0)
        synthesis.optimize(generations=30, population_size=16)
        assert sorted(fig1_network.node_names()) == before_nodes
        assert sorted(fig1_network.edges()) == before_edges

    def test_same_access_patterns_pass_after_hardening(self, fig1_network):
        from repro.dft import full_test_sequence

        sequence = full_test_sequence(fig1_network)
        synthesis = SelectiveHardening(fig1_network, seed=0)
        result = synthesis.optimize(generations=30, population_size=16)
        solution = result.min_damage_solution(0.5)
        assert solution is not None
        # the hardened network is physically the same network; the
        # original pattern sequence still passes verbatim
        assert sequence.run() == []
