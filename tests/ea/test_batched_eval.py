"""Parity and property tests of population-batched EA evaluation.

:class:`FaultSetHardeningProblem` lowers every genome to one residual
fault-set state and sweeps whole populations through
``damage_of_states`` — one bitset lane per unique genome.  Everything it
reports must be *bit-identical* (``==``, never approx) to the scalar
path: one ``damage_of_faults(residual_faults(genome))`` call per genome
through the per-fault backends.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench.generators import random_network
from repro.core.problem import FaultSetHardeningProblem
from repro.ea import SPEA2, EvaluationMemo, init_population
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, SegmentRole
from repro.spec import random_spec
from repro.spec.cost_model import GateCountCost

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _build_bridge(seed):
    """A seeded non-series-parallel network (the Wheatstone-bridge shape
    of ``tests/analysis/test_batch.py``)."""
    rng = random.Random(seed)
    net = RsnNetwork(f"bridge{seed}")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment(
        "sel1", length=rng.randint(1, 2), role=SegmentRole.CONTROL
    )
    net.add_fanout("f1")
    net.add_segment("a", length=rng.randint(1, 4), instrument="ia")
    net.add_segment("b", length=rng.randint(1, 4), instrument="ib")
    net.add_fanout("fa")
    net.add_mux("m1", fanin=2, control_cell="sel1")
    net.add_mux("m2", fanin=2, control_cell="sel1")
    for edge in [
        ("scan_in", "sel1"), ("sel1", "f1"), ("f1", "a"), ("f1", "b"),
        ("a", "fa"), ("fa", "m1"), ("b", "m1"), ("m1", "m2"), ("fa", "m2"),
    ]:
        net.add_edge(*edge)
    tail_count = rng.randint(1, 3)
    previous = "m2"
    for index in range(tail_count):
        name = f"tail{index}"
        net.add_segment(
            name, length=rng.randint(1, 3), instrument=f"it{index}"
        )
        net.add_edge(previous, name)
        previous = name
    net.add_edge(previous, "scan_out")
    net.register_unit(
        ControlUnit("unit.sel1", muxes=["m1", "m2"], cells=["sel1"])
    )
    net.validate()
    spec = random_spec(net.instrument_names(), seed=seed)
    return net, spec


def _build_any(seed, bridge):
    return _build_bridge(seed) if bridge else _build(seed)


def _problems(seed, bridge, **kwargs):
    """The same fault-set problem over the bitset and IR backends."""
    network, spec = _build_any(seed, bridge)
    built = []
    for backend in ("bitset", "ir"):
        analysis = GraphDamageAnalysis(network, spec, backend=backend)
        built.append(
            FaultSetHardeningProblem(
                network, analysis.report(), GateCountCost(), analysis,
                **kwargs,
            )
        )
    return built


def _scalar_objectives(problem, analysis, genomes):
    """The pre-batching path: per-genome fault multiset + scalar sweep."""
    rows = []
    for genome in np.asarray(genomes, dtype=bool):
        cost = float(genome.astype(float) @ problem.costs)
        damage = analysis.damage_of_faults(problem.residual_faults(genome))
        rows.append([cost, damage])
    return np.asarray(rows, dtype=float)


# ---------------------------------------------------------------------------
# batched == scalar, property-based
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=seeds, bridge=st.booleans(), pop_seed=seeds)
def test_batched_matches_scalar(seed, bridge, pop_seed):
    batched, scalar = _problems(seed, bridge)
    genomes = init_population(
        np.random.default_rng(pop_seed), 17, batched.n_vars
    )
    expected = _scalar_objectives(
        batched, scalar._analysis, genomes
    )
    assert np.array_equal(batched.evaluate(genomes), expected)
    # The IR-backed problem's per-state loop agrees too.
    assert np.array_equal(scalar.evaluate(genomes), expected)


@settings(max_examples=10, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_extremes_match_scalar(seed, bridge):
    """max/floor damage are the all-zeros / all-ones joint damages."""
    batched, scalar = _problems(seed, bridge)
    zeros = np.zeros(batched.n_vars, dtype=bool)
    ones = np.ones(batched.n_vars, dtype=bool)
    assert batched.max_damage == scalar._analysis.damage_of_faults(
        batched.residual_faults(zeros)
    )
    assert batched.floor_damage == scalar._analysis.damage_of_faults(
        batched.residual_faults(ones)
    )
    assert batched.max_damage == scalar.max_damage
    assert batched.floor_damage == scalar.floor_damage


# ---------------------------------------------------------------------------
# lane boundaries
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("population", [63, 64, 65])
def test_lane_boundary_populations(population):
    """Populations around the 64-lane word boundary, single-word chunks
    (chunk_lanes=1 forces multi-chunk sweeps at 65 genomes)."""
    network, spec = _build_any(7, True)
    analysis = GraphDamageAnalysis(
        network, spec, backend="bitset", chunk_lanes=1
    )
    problem = FaultSetHardeningProblem(
        network, analysis.report(), GateCountCost(), analysis
    )
    scalar = GraphDamageAnalysis(network, spec, backend="ir")
    genomes = init_population(
        np.random.default_rng(1), population, problem.n_vars
    )
    assert np.array_equal(
        problem.evaluate(genomes),
        _scalar_objectives(problem, scalar, genomes),
    )


# ---------------------------------------------------------------------------
# incremental re-evaluation
# ---------------------------------------------------------------------------
def test_memo_reevaluates_only_changed_genomes():
    batched, _ = _problems(11, True)
    rng = np.random.default_rng(3)
    genomes = init_population(rng, 40, batched.n_vars)
    unique = len({key for key in EvaluationMemo.keys_of(genomes)})

    swept_baseline = batched.counters["states_swept"]  # ctor extremes
    first = batched.evaluate(genomes)
    swept_first = batched.counters["states_swept"] - swept_baseline
    assert 0 < swept_first <= unique

    # Unchanged population: every genome memo-hits, nothing is swept.
    assert np.array_equal(batched.evaluate(genomes), first)
    assert batched.counters["states_swept"] == swept_baseline + swept_first

    # Mutate a handful of rows: only the changed unique genomes sweep.
    mutated = genomes.copy()
    flipped = [0, 3, 9]
    for row in flipped:
        mutated[row, rng.integers(batched.n_vars)] ^= True
    before = batched.counters["states_swept"]
    second = batched.evaluate(mutated)
    fresh = {
        key
        for row, key in enumerate(EvaluationMemo.keys_of(mutated))
        if row in flipped
    }
    assert batched.counters["states_swept"] - before <= len(fresh)
    untouched = [r for r in range(len(genomes)) if r not in flipped]
    assert np.array_equal(second[untouched], first[untouched])


def test_memo_eviction_keeps_results_exact():
    """A tiny memo forces re-sweeps; results must not change."""
    batched, _ = _problems(5, False, max_memo_entries=4)
    genomes = init_population(np.random.default_rng(2), 12, batched.n_vars)
    first = batched.evaluate(genomes)
    assert np.array_equal(batched.evaluate(genomes), first)
    assert len(batched.memo) <= 4


def test_duplicate_genomes_share_one_lane():
    batched, _ = _problems(13, True)
    genome = init_population(np.random.default_rng(5), 2, batched.n_vars)[:1]
    population = np.repeat(genome, 24, axis=0)
    before = batched.counters["states_swept"]
    objectives = batched.evaluate(population)
    assert batched.counters["states_swept"] - before <= 1
    assert np.array_equal(objectives, np.repeat(objectives[:1], 24, axis=0))


# ---------------------------------------------------------------------------
# whole-EA trajectory parity
# ---------------------------------------------------------------------------
@settings(max_examples=5, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_spea2_front_parity_across_backends(seed, bridge):
    """Identical SPEA-2 runs over the bitset- and IR-backed problems:
    the only difference is the state-sweep backend, so archives, fronts
    and objective trajectories must be bit-identical."""
    fronts = []
    for problem in _problems(seed, bridge):
        result = SPEA2(problem, population_size=16, seed=0).run(4)
        fronts.append((result.front(), result.history))
    (b_front, b_history), (s_front, s_history) = fronts
    assert np.array_equal(b_front[0], s_front[0])
    assert np.array_equal(b_front[1], s_front[1])
    assert b_history == s_history
