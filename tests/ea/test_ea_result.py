"""Unit tests for the EAResult container."""

import numpy as np

from repro.ea.result import EAResult


def make_result(objectives, reference=(10.0, 10.0)):
    objectives = np.asarray(objectives, dtype=float)
    genomes = np.zeros((len(objectives), 4), dtype=bool)
    for index in range(len(objectives)):
        genomes[index, : index % 5] = True
    return EAResult(
        algorithm="test",
        genomes=genomes,
        objectives=objectives,
        history=[{"generation": 1, "hypervolume": 1.0}],
        generations=1,
        n_evaluations=len(objectives),
        seed=0,
        reference=reference,
    )


class TestFront:
    def test_front_drops_dominated(self):
        result = make_result([[1, 3], [2, 2], [3, 3]])
        _, front = result.front()
        assert len(front) == 2

    def test_front_drops_duplicates(self):
        result = make_result([[1, 2], [1, 2]])
        _, front = result.front()
        assert len(front) == 1

    def test_front_sorted_by_first_objective(self):
        result = make_result([[3, 1], [1, 3], [2, 2]])
        _, front = result.front()
        assert list(front[:, 0]) == sorted(front[:, 0])


class TestMetrics:
    def test_hypervolume_against_reference(self):
        result = make_result([[5, 5]])
        assert result.hypervolume() == 25.0

    def test_hypervolume_without_reference_is_zero(self):
        result = make_result([[1, 1]], reference=None)
        assert result.hypervolume() == 0.0

    def test_best_for_objective(self):
        result = make_result([[1, 9], [9, 1]])
        _, best0 = result.best_for_objective(0)
        _, best1 = result.best_for_objective(1)
        assert best0[0] == 1.0
        assert best1[1] == 1.0

    def test_repr_mentions_algorithm(self):
        assert "test" in repr(make_result([[1, 1]]))
