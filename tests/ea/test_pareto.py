"""Unit and property tests for Pareto utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ea import (
    crowding_distance,
    dedupe_front,
    dominates,
    domination_matrix,
    fast_non_dominated_sort,
    hypervolume_2d,
    non_dominated_mask,
    normalize,
    pareto_front,
)

objective_arrays = hnp.arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=30),
        st.integers(min_value=2, max_value=3),
    ),
    elements=st.floats(min_value=0, max_value=100, allow_nan=False),
)


class TestDominates:
    def test_strict_domination(self):
        assert dominates(np.array([1, 1]), np.array([2, 2]))

    def test_partial_improvement_dominates(self):
        assert dominates(np.array([1, 2]), np.array([1, 3]))

    def test_equal_does_not_dominate(self):
        assert not dominates(np.array([1, 2]), np.array([1, 2]))

    def test_tradeoff_no_domination(self):
        assert not dominates(np.array([1, 3]), np.array([2, 2]))
        assert not dominates(np.array([2, 2]), np.array([1, 3]))


class TestFronts:
    def test_simple_front(self):
        objs = np.array([[1, 3], [2, 2], [3, 1], [3, 3]])
        front = pareto_front(objs)
        assert list(front) == [0, 1, 2]

    def test_duplicates_deduped(self):
        objs = np.array([[1, 2], [1, 2], [0, 5]])
        assert len(dedupe_front(objs)) == 2

    def test_non_dominated_mask(self):
        objs = np.array([[0, 0], [1, 1]])
        assert list(non_dominated_mask(objs)) == [True, False]

    def test_fast_sort_layers(self):
        objs = np.array([[0, 0], [1, 1], [2, 2]])
        fronts = fast_non_dominated_sort(objs)
        assert [list(front) for front in fronts] == [[0], [1], [2]]

    def test_fast_sort_partitions_population(self):
        rng = np.random.default_rng(0)
        objs = rng.random((40, 2))
        fronts = fast_non_dominated_sort(objs)
        indices = sorted(int(i) for front in fronts for i in front)
        assert indices == list(range(40))

    @settings(max_examples=40, deadline=None)
    @given(objs=objective_arrays)
    def test_first_front_mutually_nondominated(self, objs):
        front = fast_non_dominated_sort(objs)[0]
        matrix = domination_matrix(objs[front])
        assert not matrix.any()

    @settings(max_examples=40, deadline=None)
    @given(objs=objective_arrays)
    def test_front_members_not_dominated_by_anyone(self, objs):
        for index in pareto_front(objs):
            for other in objs:
                assert not dominates(other, objs[index]) or np.array_equal(
                    other, objs[index]
                )


class TestCrowding:
    def test_extremes_infinite(self):
        objs = np.array([[0, 4], [1, 3], [2, 2], [4, 0]])
        crowd = crowding_distance(objs)
        assert np.isinf(crowd[0])
        assert np.isinf(crowd[-1])
        assert np.isfinite(crowd[1:3]).all()

    def test_small_fronts_all_infinite(self):
        assert np.isinf(crowding_distance(np.array([[1, 2]]))).all()
        assert np.isinf(crowding_distance(np.array([[1, 2], [2, 1]]))).all()

    def test_degenerate_objective_span(self):
        objs = np.array([[1, 1], [1, 1], [1, 1]])
        crowd = crowding_distance(objs)
        assert np.isinf(crowd[0])


class TestHypervolume:
    def test_single_point(self):
        assert hypervolume_2d(np.array([[1, 1]]), (3, 3)) == 4.0

    def test_two_point_staircase(self):
        objs = np.array([[1, 2], [2, 1]])
        # (3-1)*(3-2) + (3-2)*(2-1) = 2 + 1 = 3
        assert hypervolume_2d(objs, (3, 3)) == 3.0

    def test_points_beyond_reference_ignored(self):
        objs = np.array([[5, 5], [1, 1]])
        assert hypervolume_2d(objs, (3, 3)) == 4.0

    def test_dominated_points_do_not_add(self):
        objs = np.array([[1, 1], [2, 2]])
        assert hypervolume_2d(objs, (3, 3)) == 4.0

    def test_wrong_shape_rejected(self):
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            hypervolume_2d(np.array([1.0, 2.0]), (3, 3))

    @settings(max_examples=30, deadline=None)
    @given(objs=objective_arrays.filter(lambda a: a.shape[1] == 2))
    def test_hypervolume_monotone_in_points(self, objs):
        reference = (101.0, 101.0)
        partial = hypervolume_2d(objs[: max(1, len(objs) // 2)], reference)
        full = hypervolume_2d(objs, reference)
        assert full >= partial - 1e-9


class TestNormalize:
    def test_unit_range(self):
        objs = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        norm = normalize(objs)
        assert norm.min() == 0.0
        assert norm.max() == 1.0

    def test_degenerate_column(self):
        objs = np.array([[1.0, 5.0], [1.0, 6.0]])
        norm = normalize(objs)
        assert (norm[:, 0] == 0).all()
