"""Properties of the vectorized genome lowering and streaming sweeps.

:class:`PopulationLowering` must produce the *same packed word masks*
the kernel builds from per-genome ``_state_of`` tuples — then everything
downstream (sweeps, damages) is the same computation, so equality is
``==``, never approx.  Streaming the memo misses in lane blocks must be
invisible in the results for any block size.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.core.lowering import PopulationLowering
from repro.core.problem import FaultSetHardeningProblem
from repro.ea import init_population
from repro.errors import OptimizationError
from repro.spec.cost_model import GateCountCost

from test_batched_eval import _build_any, _scalar_objectives

seeds = st.integers(min_value=0, max_value=50_000)


def _bitset_problem(seed, bridge, lowering="auto", **kwargs):
    network, spec = _build_any(seed, bridge)
    analysis = GraphDamageAnalysis(
        network, spec, backend="bitset",
        chunk_lanes=kwargs.pop("chunk_lanes", 64),
    )
    problem = FaultSetHardeningProblem(
        network, analysis.report(), GateCountCost(), analysis,
        lowering=lowering, **kwargs,
    )
    return network, spec, problem


def _population_with_extremes(rng, population, n_vars):
    genomes = init_population(rng, population, n_vars)
    genomes[0] = False  # all-zeros: every candidate faulty at once
    genomes[-1] = True  # all-ones: no residual fault
    return genomes


# ---------------------------------------------------------------------------
# masks: vectorized lowering == per-genome tuple lowering, word-identical
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=seeds, bridge=st.booleans(), pop_seed=seeds)
def test_lowered_masks_match_tuple_path(seed, bridge, pop_seed):
    _, _, problem = _bitset_problem(seed, bridge)
    kernel = problem._analysis._batch
    genomes = _population_with_extremes(
        np.random.default_rng(pop_seed), 19, problem.n_vars
    )
    states = [
        kernel.canonical_state(*problem._state_of(genome))
        for genome in genomes
    ]
    prop, alive, _ = kernel._masks(states)
    packed = problem.lower_packed(genomes)
    assert np.array_equal(packed.dead, ~alive)
    if prop is None:
        assert packed.broken is None
    else:
        assert packed.broken is not None
        assert np.array_equal(packed.broken, ~prop)


# ---------------------------------------------------------------------------
# vectorized == _state_of == damage_of_faults(residual_faults(g))
# ---------------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    seed=seeds,
    bridge=st.booleans(),
    pop_seed=seeds,
    hardenable=st.sampled_from(["all", "control"]),
)
def test_vectorized_matches_scalar_references(
    seed, bridge, pop_seed, hardenable
):
    try:
        network, spec, vectorized = _bitset_problem(
            seed, bridge, hardenable=hardenable
        )
    except OptimizationError:
        # a random SP network without control units has no candidates
        # under hardenable="control"
        assume(False)
    _, _, tuples = _bitset_problem(
        seed, bridge, lowering="scalar", hardenable=hardenable
    )
    assert vectorized._vectorized and not tuples._vectorized
    scalar = GraphDamageAnalysis(network, spec, backend="ir")
    genomes = _population_with_extremes(
        np.random.default_rng(pop_seed), 17, vectorized.n_vars
    )
    expected = _scalar_objectives(vectorized, scalar, genomes)
    assert np.array_equal(vectorized.evaluate(genomes), expected)
    assert np.array_equal(tuples.evaluate(genomes), expected)


# ---------------------------------------------------------------------------
# lane boundaries and streaming invariance
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("population", [63, 64, 65])
def test_lane_boundaries_under_streaming(population):
    """Populations around the 64-lane word boundary, streamed in
    single-word blocks (chunk_lanes=1 + a tiny budget force 64-lane
    blocks, so 65 genomes take two)."""
    network, spec, problem = _bitset_problem(
        7, True, chunk_lanes=1, max_lane_mb=0.001
    )
    assert problem._lane_block() == 64
    scalar = GraphDamageAnalysis(network, spec, backend="ir")
    genomes = _population_with_extremes(
        np.random.default_rng(1), population, problem.n_vars
    )
    assert np.array_equal(
        problem.evaluate(genomes),
        _scalar_objectives(problem, scalar, genomes),
    )


@settings(max_examples=10, deadline=None)
@given(seed=seeds, bridge=st.booleans(), pop_seed=seeds)
def test_streaming_block_size_is_invisible(seed, bridge, pop_seed):
    """Chunked and unchunked sweeps of the same cold population are
    bit-identical (fresh problems, so every genome is a memo miss)."""
    _, _, streamed = _bitset_problem(seed, bridge, max_lane_mb=0.001)
    _, _, unchunked = _bitset_problem(seed, bridge, max_lane_mb=None)
    assert unchunked._lane_block() is None
    genomes = _population_with_extremes(
        np.random.default_rng(pop_seed), 150, streamed.n_vars
    )
    assert np.array_equal(
        streamed.evaluate(genomes), unchunked.evaluate(genomes)
    )


def test_lane_block_respects_budget_and_capacity():
    _, _, problem = _bitset_problem(3, False, chunk_lanes=2)
    problem.max_lane_mb = 1e-9  # absurdly small: floors at one word
    assert problem._lane_block() == 64
    problem.max_lane_mb = 1e9  # absurdly large: kernel chunk bounds it
    assert problem._lane_block() == 128
    problem.max_lane_mb = None  # streaming disabled
    assert problem._lane_block() is None


# ---------------------------------------------------------------------------
# pin-resolution invariant on a contested mux
# ---------------------------------------------------------------------------
def _reference_state(candidate_states, genome):
    """Reimplementation of the ``_state_of`` merge loop: breaks
    accumulate, override pins assign, non-override pins setdefault."""
    broken, forced = [], {}
    for index in np.flatnonzero(~np.asarray(genome, dtype=bool)):
        more_broken, pins, override = candidate_states[index]
        broken.extend(more_broken)
        if override:
            for mux_id, port in pins:
                forced[mux_id] = port
        else:
            for mux_id, port in pins:
                forced.setdefault(mux_id, port)
    return tuple(broken), tuple(forced.items())


def test_contested_mux_priority_resolution():
    """Several candidates pinning the same mux: the vectorized priority
    scan must reproduce override-beats-setdefault, last-override-wins,
    first-setdefault-wins — exhaustively over every genome."""
    _, _, problem = _bitset_problem(3, True)
    kernel = problem._analysis._batch
    ir = problem._analysis.ir
    m1, m2 = ir.id_of("m1"), ir.id_of("m2")
    a = ir.id_of("a")
    candidate_states = [
        # duplicate non-override pins inside one candidate: first wins
        ((a,), ((m1, 1), (m1, 0)), False),
        ((), ((m1, 0), (m2, 1)), True),
        # a later override candidate beats an earlier one
        ((), ((m1, 1),), True),
        # setdefault never beats an active override
        ((), ((m2, 0),), False),
    ]
    lowering = PopulationLowering(ir, candidate_states, len(candidate_states))
    assert lowering._contested_spans  # the fallback path is exercised
    genomes = np.array(
        [
            [bool(code >> bit & 1) for bit in range(len(candidate_states))]
            for code in range(2 ** len(candidate_states))
        ]
    )
    states = [
        kernel.canonical_state(*_reference_state(candidate_states, genome))
        for genome in genomes
    ]
    prop, alive, _ = kernel._masks(states)
    packed = lowering.masks(genomes)
    assert np.array_equal(packed.dead, ~alive)
    assert np.array_equal(packed.broken, ~prop)
    expected = kernel.damage_of_states(
        [_reference_state(candidate_states, genome) for genome in genomes]
    )
    assert np.array_equal(kernel.damage_of_packed(packed), expected)


# ---------------------------------------------------------------------------
# guard rails
# ---------------------------------------------------------------------------
def test_vectorized_lowering_requires_bitset():
    network, spec = _build_any(1, False)
    analysis = GraphDamageAnalysis(network, spec, backend="ir")
    report = analysis.report()
    with pytest.raises(OptimizationError):
        FaultSetHardeningProblem(
            network, report, GateCountCost(), analysis,
            lowering="vectorized",
        )
    # auto quietly falls back to the tuple path on scalar backends
    problem = FaultSetHardeningProblem(
        network, report, GateCountCost(), analysis
    )
    assert not problem._vectorized


def test_packed_states_need_bitset_backend():
    network, spec = _build_any(1, False)
    _, _, problem = _bitset_problem(1, False)
    packed = problem.lower_packed(
        init_population(np.random.default_rng(0), 5, problem.n_vars)
    )
    scalar = GraphDamageAnalysis(network, spec, backend="ir")
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        scalar.damage_of_packed_states(packed)
