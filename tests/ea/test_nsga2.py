"""Unit tests for the NSGA-II implementation."""

import numpy as np
import pytest

from repro.ea import NSGA2, SPEA2, domination_matrix, hypervolume_2d
from repro.ea.nsga2 import _crowded_better, _elitist_selection
from repro.errors import OptimizationError


def linear_problem(n_vars=30, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 10, n_vars).astype(float)
    values = rng.integers(1, 10, n_vars).astype(float)

    class Linear:
        def __init__(self):
            self.n_vars = n_vars
            self.n_objectives = 2

        def evaluate(self, genomes):
            g = np.asarray(genomes, dtype=float)
            return np.stack([g @ weights, (1 - g) @ values], axis=1)

    return Linear()


class TestCrowdedComparison:
    def test_rank_wins(self):
        ranks = np.array([0, 1])
        crowding = np.array([0.0, 10.0])
        assert _crowded_better(ranks, crowding, np.array([0]), np.array([1]))[0]

    def test_crowding_breaks_ties(self):
        ranks = np.array([0, 0])
        crowding = np.array([5.0, 1.0])
        assert _crowded_better(ranks, crowding, np.array([0]), np.array([1]))[0]
        assert not _crowded_better(
            ranks, crowding, np.array([1]), np.array([0])
        )[0]


class TestElitistSelection:
    def test_whole_front_fits(self):
        objs = np.array([[0.0, 1.0], [1.0, 0.0], [2.0, 2.0]])
        keep = _elitist_selection(objs, 2)
        assert sorted(keep) == [0, 1]

    def test_crowding_truncation(self):
        objs = np.array(
            [[0.0, 4.0], [1.9, 2.0], [2.0, 1.9], [4.0, 0.0]]
        )
        keep = _elitist_selection(objs, 3)
        assert 0 in keep and 3 in keep  # extremes survive

    def test_selection_size(self):
        rng = np.random.default_rng(0)
        objs = rng.random((25, 2))
        assert len(_elitist_selection(objs, 10)) == 10


class TestNSGA2Runs:
    def test_deterministic_under_seed(self):
        problem = linear_problem()
        first = NSGA2(problem, population_size=20, seed=4).run(15)
        second = NSGA2(problem, population_size=20, seed=4).run(15)
        assert np.array_equal(first.objectives, second.objectives)

    def test_result_is_first_front(self):
        result = NSGA2(linear_problem(), population_size=24, seed=1).run(25)
        assert not domination_matrix(result.objectives).any()

    def test_hypervolume_improves(self):
        result = NSGA2(linear_problem(), population_size=30, seed=2).run(60)
        hv = [entry["hypervolume"] for entry in result.history]
        assert hv[-1] >= hv[0]

    def test_comparable_quality_to_spea2(self):
        """Both optimizers should reach fronts of the same order of
        hypervolume on an easy linear problem."""
        problem = linear_problem(seed=3)
        reference = (200.0, 200.0)
        spea = SPEA2(problem, population_size=30, seed=0).run(60)
        nsga = NSGA2(problem, population_size=30, seed=0).run(60)
        hv_spea = hypervolume_2d(spea.objectives, reference)
        hv_nsga = hypervolume_2d(nsga.objectives, reference)
        assert hv_nsga > 0.7 * hv_spea
        assert hv_spea > 0.7 * hv_nsga

    def test_early_stop(self):
        result = NSGA2(linear_problem(), population_size=20, seed=0).run(
            100, early_stop=lambda history: len(history) >= 3
        )
        assert result.generations == 3

    def test_bad_population_rejected(self):
        with pytest.raises(OptimizationError):
            NSGA2(linear_problem(), population_size=0)


class TestTermination:
    def test_hypervolume_stall(self):
        from repro.ea import HypervolumeStall

        stall = HypervolumeStall(patience=3, rel_tol=1e-3)
        flat = [{"hypervolume": 100.0} for _ in range(10)]
        assert stall(flat)
        growing = [{"hypervolume": float(k + 1) * 50} for k in range(10)]
        assert not stall(growing)

    def test_hypervolume_stall_needs_history(self):
        from repro.ea import HypervolumeStall

        stall = HypervolumeStall(patience=5)
        assert not stall([{"hypervolume": 1.0}])

    def test_target_objective(self):
        from repro.ea import TargetObjective

        stop = TargetObjective(objective=1, target=10.0)
        assert stop([{"best_obj1": 9.0}])
        assert not stop([{"best_obj1": 11.0}])

    def test_target_objective_missing_key(self):
        from repro.ea import TargetObjective
        from repro.errors import OptimizationError

        stop = TargetObjective(objective=7, target=1.0)
        with pytest.raises(OptimizationError):
            stop([{"best_obj1": 0.0}])

    def test_bad_patience_rejected(self):
        from repro.ea import HypervolumeStall
        from repro.errors import OptimizationError

        with pytest.raises(OptimizationError):
            HypervolumeStall(patience=0)
