"""Unit tests for the SPEA-2 implementation."""

import numpy as np
import pytest

from repro.ea import FunctionProblem, SPEA2
from repro.ea.spea2 import _environmental_selection, _fitness, _truncate
from repro.errors import OptimizationError


def linear_problem(n_vars=30, seed=0):
    rng = np.random.default_rng(seed)
    weights = rng.integers(1, 10, n_vars).astype(float)
    values = rng.integers(1, 10, n_vars).astype(float)

    class Linear:
        def __init__(self):
            self.n_vars = n_vars
            self.n_objectives = 2

        def evaluate(self, genomes):
            g = np.asarray(genomes, dtype=float)
            return np.stack([g @ weights, (1 - g) @ values], axis=1)

    return Linear()


class TestFitnessAssignment:
    def test_nondominated_have_fitness_below_one(self):
        objs = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        fitness, _ = _fitness(objs)
        assert (fitness[:3] < 1.0).all()
        assert fitness[3] >= 1.0

    def test_more_dominated_is_worse(self):
        objs = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        fitness, _ = _fitness(objs)
        assert fitness[0] < fitness[1] < fitness[2]

    def test_normalized_objectives_returned(self):
        objs = np.random.default_rng(0).random((10, 2))
        _, norm = _fitness(objs)
        assert norm.shape == objs.shape
        assert np.allclose(norm.min(axis=0), 0.0)
        assert np.allclose(norm.max(axis=0), 1.0)

    def test_blocked_fitness_matches_naive(self):
        """The blocked computation must be bit-identical to the direct
        full-matrix formulation it replaced."""
        import math

        from repro.ea.pareto import domination_matrix, normalize

        objs = np.random.default_rng(7).random((37, 2))
        fitness, _ = _fitness(objs)

        matrix = domination_matrix(objs)
        strength = matrix.sum(axis=1).astype(float)
        raw = (strength[:, None] * matrix).sum(axis=0)
        norm = normalize(objs)
        deltas = norm[:, None, :] - norm[None, :, :]
        distances = np.sqrt((deltas * deltas).sum(axis=2))
        k = min(len(objs) - 1, max(1, int(math.sqrt(len(objs)))))
        sigma_k = np.sort(distances, axis=1)[:, k]
        expected = raw + 1.0 / (sigma_k + 2.0)
        assert np.array_equal(fitness, expected)


class TestEnvironmentalSelection:
    def test_exact_fit(self):
        objs = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0], [5.0, 5.0]])
        fitness, norm = _fitness(objs)
        keep = _environmental_selection(fitness, norm, 3)
        assert sorted(keep) == [0, 1, 2]

    def test_fill_with_best_dominated(self):
        objs = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        fitness, norm = _fitness(objs)
        keep = _environmental_selection(fitness, norm, 2)
        assert 0 in keep and 1 in keep

    def test_truncation_keeps_extremes(self):
        # five points on a line; truncation should drop the crowded middle
        objs = np.array(
            [[0.0, 4.0], [1.0, 3.0], [1.1, 2.9], [2.0, 2.0], [4.0, 0.0]]
        )
        fitness, norm = _fitness(objs)
        keep = _environmental_selection(fitness, norm, 3)
        assert 0 in keep and 4 in keep

    def test_truncate_size(self):
        rng = np.random.default_rng(1)
        objs = rng.random((20, 2))
        _, norm = _fitness(objs)
        deltas = norm[:, None, :] - norm[None, :, :]
        distances = np.sqrt((deltas * deltas).sum(axis=2))
        result = _truncate(np.arange(20), distances, 7)
        assert len(result) == 7


class TestSPEA2Runs:
    def test_deterministic_under_seed(self):
        problem = linear_problem()
        first = SPEA2(problem, population_size=20, seed=5).run(15)
        second = SPEA2(problem, population_size=20, seed=5).run(15)
        assert np.array_equal(first.objectives, second.objectives)

    def test_seeds_differ(self):
        problem = linear_problem()
        first = SPEA2(problem, population_size=20, seed=5).run(15)
        second = SPEA2(problem, population_size=20, seed=6).run(15)
        assert not np.array_equal(first.objectives, second.objectives)

    def test_archive_mutually_nondominated(self):
        from repro.ea import domination_matrix

        result = SPEA2(linear_problem(), population_size=24, seed=1).run(25)
        front_idx = np.arange(len(result.objectives))
        matrix = domination_matrix(result.objectives)
        # archive may contain filled-in dominated points only when the
        # front is smaller than the archive; the dedicated front() must be
        # clean
        _, front_objs = result.front()
        assert not domination_matrix(front_objs).any()

    def test_hypervolume_generally_improves(self):
        result = SPEA2(linear_problem(), population_size=30, seed=2).run(60)
        hv = [entry["hypervolume"] for entry in result.history]
        assert hv[-1] >= hv[0]

    def test_front_sorted_tradeoff(self):
        result = SPEA2(linear_problem(), population_size=30, seed=3).run(50)
        _, objs = result.front()
        assert all(
            objs[k + 1][0] > objs[k][0] and objs[k + 1][1] < objs[k][1]
            for k in range(len(objs) - 1)
        )

    def test_evaluation_count(self):
        result = SPEA2(linear_problem(), population_size=20, seed=0).run(10)
        assert result.n_evaluations == 20 * 10

    def test_history_length(self):
        result = SPEA2(linear_problem(), population_size=20, seed=0).run(12)
        assert len(result.history) == 12
        assert result.generations == 12

    def test_early_stop(self):
        stopper = lambda history: len(history) >= 4
        result = SPEA2(linear_problem(), population_size=20, seed=0).run(
            100, early_stop=stopper
        )
        assert result.generations == 4

    def test_bad_population_size_rejected(self):
        with pytest.raises(OptimizationError):
            SPEA2(linear_problem(), population_size=1)

    def test_bad_problem_rejected(self):
        class Bad:
            n_vars = 0
            n_objectives = 2

        with pytest.raises(OptimizationError):
            SPEA2(Bad())

    def test_function_problem_adapter(self):
        problem = FunctionProblem(
            4, 2, lambda g: (float(g.sum()), float(4 - g.sum()))
        )
        result = SPEA2(problem, population_size=8, seed=0).run(10)
        assert result.objectives.shape[1] == 2

    def test_archive_size_parameter(self):
        result = SPEA2(
            linear_problem(), population_size=20, archive_size=5, seed=0
        ).run(20)
        assert len(result.objectives) <= 5
