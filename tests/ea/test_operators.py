"""Unit and property tests for the variation operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ea import (
    binary_tournament,
    bit_mutation,
    init_population,
    one_point_crossover,
)
from repro.errors import OptimizationError


class TestInitPopulation:
    def test_shape(self):
        rng = np.random.default_rng(0)
        pop = init_population(rng, 20, 15)
        assert pop.shape == (20, 15)
        assert pop.dtype == bool

    def test_diverse_covers_density_range(self):
        rng = np.random.default_rng(1)
        pop = init_population(rng, 200, 50, style="diverse")
        densities = pop.mean(axis=1)
        assert densities.min() < 0.2
        assert densities.max() > 0.8

    def test_uniform_density_near_half(self):
        rng = np.random.default_rng(2)
        pop = init_population(rng, 200, 50, style="uniform")
        assert 0.4 < pop.mean() < 0.6

    def test_unknown_style_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(OptimizationError):
            init_population(rng, 10, 5, style="magic")

    def test_tiny_population_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(OptimizationError):
            init_population(rng, 1, 5)


class TestCrossover:
    def test_offspring_bits_come_from_parents(self):
        rng = np.random.default_rng(3)
        parents = np.zeros((2, 10), dtype=bool)
        parents[1] = True
        children = one_point_crossover(rng, parents, p_crossover=1.0)
        # each child must be a prefix of one parent + suffix of the other
        combined = children[0] | children[1]
        assert combined.all()
        assert not (children[0] & children[1]).any()

    def test_no_crossover_at_zero_probability(self):
        rng = np.random.default_rng(4)
        parents = np.zeros((4, 8), dtype=bool)
        parents[::2] = True
        children = one_point_crossover(rng, parents, p_crossover=0.0)
        assert (children == parents).all()

    def test_bit_conservation(self):
        """One-point crossover conserves the multiset of bits per column
        within each pair."""
        rng = np.random.default_rng(5)
        parents = rng.random((6, 12)) < 0.5
        children = one_point_crossover(rng, parents, p_crossover=1.0)
        for pair in range(0, 6, 2):
            parent_sum = parents[pair].astype(int) + parents[pair + 1]
            child_sum = children[pair].astype(int) + children[pair + 1]
            assert (parent_sum == child_sum).all()

    def test_odd_parent_count_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(OptimizationError):
            one_point_crossover(
                rng, np.zeros((3, 5), dtype=bool), p_crossover=1.0
            )

    def test_single_gene_genomes_pass_through(self):
        rng = np.random.default_rng(0)
        parents = np.array([[True], [False]])
        children = one_point_crossover(rng, parents, p_crossover=1.0)
        assert (children == parents).all()


class TestMutation:
    def test_zero_probability_identity(self):
        rng = np.random.default_rng(6)
        genomes = rng.random((5, 20)) < 0.5
        assert (bit_mutation(rng, genomes, 0.0) == genomes).all()

    def test_probability_one_flips_everything(self):
        rng = np.random.default_rng(7)
        genomes = np.zeros((3, 9), dtype=bool)
        assert bit_mutation(rng, genomes, 1.0).all()

    def test_original_untouched(self):
        rng = np.random.default_rng(8)
        genomes = np.zeros((2, 5), dtype=bool)
        bit_mutation(rng, genomes, 1.0)
        assert not genomes.any()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_flip_rate_statistic(self, seed):
        rng = np.random.default_rng(seed)
        genomes = np.zeros((50, 100), dtype=bool)
        mutated = bit_mutation(rng, genomes, 0.05)
        rate = mutated.mean()
        assert 0.01 < rate < 0.12


class TestTournament:
    def test_lower_fitness_preferred(self):
        rng = np.random.default_rng(9)
        fitness = np.array([0.0, 100.0])
        winners = binary_tournament(rng, fitness, 200)
        # index 0 must win every mixed pairing: > half the draws overall
        assert (winners == 0).mean() > 0.6

    def test_count_respected(self):
        rng = np.random.default_rng(10)
        winners = binary_tournament(rng, np.array([1.0, 2.0, 3.0]), 17)
        assert len(winners) == 17

    def test_indices_in_range(self):
        rng = np.random.default_rng(11)
        winners = binary_tournament(rng, np.arange(5, dtype=float), 50)
        assert winners.min() >= 0 and winners.max() < 5


class TestLargeGenomeMutation:
    def test_index_sampling_branch_statistics(self):
        """Above the block threshold, mutation switches to index sampling;
        the effective flip rate must stay close to p."""
        import repro.ea.operators as ops

        rng = np.random.default_rng(0)
        genomes = np.zeros((4, 3_000_000), dtype=bool)
        original = ops._BLOCK_CELLS
        try:
            ops._BLOCK_CELLS = 1_000_000
            mutated = ops.bit_mutation(rng, genomes, 0.01)
        finally:
            ops._BLOCK_CELLS = original
        rate = mutated.mean()
        assert 0.008 < rate < 0.012
        assert not genomes.any()  # input untouched

    def test_index_sampling_zero_probability(self):
        import repro.ea.operators as ops

        rng = np.random.default_rng(1)
        genomes = np.ones((2, 3_000_000), dtype=bool)
        original = ops._BLOCK_CELLS
        try:
            ops._BLOCK_CELLS = 1_000_000
            mutated = ops.bit_mutation(rng, genomes, 0.0)
        finally:
            ops._BLOCK_CELLS = original
        assert mutated.all()

    def test_blockwise_init_distribution(self):
        import repro.ea.operators as ops

        rng = np.random.default_rng(2)
        original = ops._BLOCK_CELLS
        try:
            ops._BLOCK_CELLS = 10_000
            population = ops.init_population(rng, 50, 2_000, style="uniform")
        finally:
            ops._BLOCK_CELLS = original
        assert 0.45 < population.mean() < 0.55
