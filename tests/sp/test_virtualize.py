"""Unit tests for virtual duplication of decomposition subtrees."""

from repro.sp import SPKind, SPNode
from repro.sp.virtualize import copy_tree, virtual_name


def sample_tree():
    inner = SPNode.parallel(SPNode.leaf("x"), SPNode.wire())
    mux = SPNode.leaf("m")
    mux.mux_branches = [
        (frozenset({0}), inner.left),
        (frozenset({1}), inner.right),
    ]
    return SPNode.series(SPNode.series(SPNode.leaf("a"), inner), mux)


class TestCopyTree:
    def test_structure_preserved(self):
        original = sample_tree()
        clone, aliases, _ = copy_tree(original, 0, {})
        original_kinds = [node.kind for node in original.post_order()]
        clone_kinds = [node.kind for node in clone.post_order()]
        assert original_kinds == clone_kinds

    def test_all_leaves_renamed_and_aliased(self):
        original = sample_tree()
        clone, aliases, counter = copy_tree(original, 0, {})
        clone_names = [
            leaf.primitive
            for leaf in clone.in_order_leaves()
            if leaf.kind is SPKind.LEAF
        ]
        assert len(clone_names) == 3
        assert all(name in aliases for name in clone_names)
        assert set(aliases.values()) == {"a", "x", "m"}
        assert counter == 3

    def test_no_node_sharing(self):
        original = sample_tree()
        clone, _, _ = copy_tree(original, 0, {})
        original_ids = {id(node) for node in original.post_order()}
        clone_ids = {id(node) for node in clone.post_order()}
        assert not original_ids & clone_ids

    def test_mux_branches_remapped_into_copy(self):
        original = sample_tree()
        clone, _, _ = copy_tree(original, 0, {})
        clone_nodes = {id(node) for node in clone.post_order()}
        for node in clone.post_order():
            if node.kind is SPKind.LEAF and node.mux_branches is not None:
                for _, subtree in node.mux_branches:
                    assert id(subtree) in clone_nodes

    def test_copy_of_copy_resolves_to_physical(self):
        original = sample_tree()
        first, aliases1, counter = copy_tree(original, 0, {})
        second, aliases2, _ = copy_tree(first, counter, aliases1)
        assert set(aliases2.values()) <= {"a", "x", "m"}

    def test_virtual_name_format(self):
        assert virtual_name("seg1", 7) == "seg1~v7"

    def test_counter_continues(self):
        original = sample_tree()
        _, _, counter = copy_tree(original, 10, {})
        assert counter == 13
