"""Unit tests for decomposition-tree structure and queries."""

import pytest

from repro.errors import ReproError
from repro.sp import SPKind, SPNode, decompose


class TestSPNodeConstructors:
    def test_series_absorbs_wires(self):
        leaf = SPNode.leaf("x")
        assert SPNode.series(SPNode.wire(), leaf) is leaf
        assert SPNode.series(leaf, SPNode.wire()) is leaf

    def test_series_of_leaves(self):
        node = SPNode.series(SPNode.leaf("a"), SPNode.leaf("b"))
        assert node.kind is SPKind.SERIES
        assert node.left.primitive == "a"

    def test_parallel_keeps_wires(self):
        node = SPNode.parallel(SPNode.wire(), SPNode.leaf("a"))
        assert node.kind is SPKind.PARALLEL
        assert node.left.kind is SPKind.WIRE

    def test_leaf_properties(self):
        leaf = SPNode.leaf("x")
        assert leaf.is_leaf and not leaf.is_inner
        assert leaf.children() == ()


class TestTraversals:
    def test_post_order_children_first(self):
        tree = SPNode.series(
            SPNode.leaf("a"),
            SPNode.parallel(SPNode.leaf("b"), SPNode.leaf("c")),
        )
        kinds = [node.kind for node in tree.post_order()]
        assert kinds == [
            SPKind.LEAF,
            SPKind.LEAF,
            SPKind.LEAF,
            SPKind.PARALLEL,
            SPKind.SERIES,
        ]

    def test_in_order_leaves_left_to_right(self):
        tree = SPNode.series(
            SPNode.leaf("a"),
            SPNode.parallel(SPNode.leaf("b"), SPNode.leaf("c")),
        )
        assert [leaf.primitive for leaf in tree.in_order_leaves()] == [
            "a",
            "b",
            "c",
        ]

    def test_traversals_are_iterative_on_deep_chains(self):
        # 5000-deep series chain would overflow a recursive traversal
        node = SPNode.leaf("l0")
        for index in range(1, 5000):
            node = SPNode.series(node, SPNode.leaf(f"l{index}"))
        assert sum(1 for _ in node.post_order()) == 2 * 5000 - 1

    def test_format_renders(self):
        tree = SPNode.series(SPNode.leaf("a"), SPNode.leaf("b"))
        text = tree.format()
        assert "S" in text and "a" in text and "b" in text


class TestSPTreeQueries:
    def test_leaf_lookup(self, fig1_network):
        tree = decompose(fig1_network)
        assert tree.leaf("c2").primitive == "c2"
        assert tree.has_leaf("c2")
        assert not tree.has_leaf("ghost")
        with pytest.raises(ReproError):
            tree.leaf("ghost")

    def test_leaf_index_is_serial_position(self, fig1_network):
        tree = decompose(fig1_network)
        indices = [tree.leaf_index(leaf) for leaf in tree.leaves]
        assert indices == sorted(indices)

    def test_parent_pointers(self, fig1_network):
        tree = decompose(fig1_network)
        assert tree.root.parent is None
        for node in tree.root.pre_order():
            for child in node.children():
                assert child.parent is node

    def test_branch_root_of_trunk_is_root(self, chain_network):
        tree = decompose(chain_network)
        for leaf in tree.primitive_leaves():
            assert tree.branch_root(leaf) is tree.root

    def test_branch_root_inside_sib(self, sib_network):
        tree = decompose(sib_network)
        in1 = tree.leaf("in1")
        branch = tree.branch_root(in1)
        assert branch.parent is not None
        assert branch.parent.kind is SPKind.PARALLEL

    def test_parent_mux_matches_paper(self, fig1_network):
        """m0 is the parent of c2 and of m1 (Sec. III)."""
        tree = decompose(fig1_network)
        assert tree.parent_mux(tree.leaf("c2")).primitive == "m0"
        assert tree.parent_mux(tree.leaf("m1")).primitive == "m0"
        assert tree.parent_mux(tree.leaf("a")).primitive == "m1"
        assert tree.parent_mux(tree.leaf("d")).primitive == "m0"
        assert tree.parent_mux(tree.leaf("g")).primitive == "m2"
        # m2 is on the trunk
        assert tree.parent_mux(tree.leaf("m2")) is None

    def test_annotate_ranges(self, fig1_network):
        tree = decompose(fig1_network)
        tree.annotate_ranges()
        assert tree.root.lo == 0
        assert tree.root.hi == len(tree.leaves) - 1
        for node in tree.root.post_order():
            if node.is_inner:
                assert node.lo == node.left.lo
                assert node.hi == node.right.hi
                assert node.left.hi + 1 == node.right.lo

    def test_annotate_ranges_idempotent(self, fig1_network):
        tree = decompose(fig1_network)
        tree.annotate_ranges()
        lo_hi = [(n.lo, n.hi) for n in tree.root.post_order()]
        tree.annotate_ranges()
        assert lo_hi == [(n.lo, n.hi) for n in tree.root.post_order()]

    def test_branch_range_is_contiguous(self, nested_sib_network):
        tree = decompose(nested_sib_network)
        tree.annotate_ranges()
        for leaf in tree.primitive_leaves():
            lo, hi = tree.branch_range(leaf)
            assert lo <= tree.leaf_index(leaf) <= hi

    def test_size(self, chain_network):
        tree = decompose(chain_network)
        assert tree.size() == 5  # 3 leaves + 2 series nodes


class TestLeafMultiplicityApi:
    def test_leaves_of_on_physical_tree(self, fig1_network):
        from repro.sp import decompose

        tree = decompose(fig1_network)
        assert not tree.is_virtualized
        assert tree.leaves_of("c2") == [tree.leaf("c2")]
        assert tree.canonical_name("c2") == "c2"

    def test_leaves_of_unknown_raises(self, fig1_network):
        from repro.errors import ReproError
        from repro.sp import decompose

        tree = decompose(fig1_network)
        with pytest.raises(ReproError):
            tree.leaves_of("ghost")

    def test_format_depth_cap(self, fig1_network):
        from repro.sp import decompose

        tree = decompose(fig1_network)
        assert "..." in tree.root.format(max_depth=1)
