"""Unit tests for series-parallel recognition and reduction."""

import pytest

from repro.errors import NotSeriesParallelError
from repro.rsn import RsnBuilder
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import SegmentRole
from repro.sp import SPKind, decompose, is_series_parallel


class TestChains:
    def test_single_segment(self):
        builder = RsnBuilder("one")
        builder.segment("s")
        tree = decompose(builder.build())
        assert tree.root.kind is SPKind.LEAF
        assert tree.root.primitive == "s"

    def test_chain_is_left_to_right_series(self, chain_network):
        tree = decompose(chain_network)
        order = [leaf.primitive for leaf in tree.primitive_leaves()]
        assert order == ["s1", "s2", "s3"]

    def test_empty_network_reduces_to_wire(self):
        net = RsnNetwork("empty")
        net.add_scan_in()
        net.add_scan_out()
        net.add_edge(net.scan_in, net.scan_out)
        tree = decompose(net)
        assert tree.root.kind is SPKind.WIRE


class TestSibStructures:
    def test_sib_produces_parallel(self, sib_network):
        tree = decompose(sib_network)
        kinds = {node.kind for node in tree.root.post_order()}
        assert SPKind.PARALLEL in kinds

    def test_sib_mux_branches_recorded(self, sib_network):
        tree = decompose(sib_network)
        mux = tree.leaf("sib0.mux")
        assert mux.mux_branches is not None
        ports = sorted(
            min(port_set) for port_set, _ in mux.mux_branches
        )
        assert ports == [0, 1]

    def test_sib_bypass_branch_is_wire(self, sib_network):
        tree = decompose(sib_network)
        mux = tree.leaf("sib0.mux")
        by_port = {min(ports): sub for ports, sub in mux.mux_branches}
        assert by_port[0].kind is SPKind.WIRE

    def test_hosted_branch_contains_segments(self, sib_network):
        tree = decompose(sib_network)
        mux = tree.leaf("sib0.mux")
        by_port = {min(ports): sub for ports, sub in mux.mux_branches}
        hosted = {
            leaf.primitive
            for leaf in by_port[1].in_order_leaves()
            if leaf.kind is SPKind.LEAF
        }
        assert hosted == {"in1", "in2"}

    def test_nested_sibs_nest_in_tree(self, nested_sib_network):
        tree = decompose(nested_sib_network)
        outer = tree.leaf("outer.mux")
        by_port = {min(p): s for p, s in outer.mux_branches}
        hosted = {
            leaf.primitive
            for leaf in by_port[1].in_order_leaves()
            if leaf.kind is SPKind.LEAF
        }
        assert "inner.mux" in hosted
        assert "deep1" in hosted


class TestMuxStructures:
    def test_three_branch_mux(self, mux3_network):
        tree = decompose(mux3_network)
        mux = tree.leaf("m")
        assert len(mux.mux_branches) == 3
        ports = sorted(min(p) for p, _ in mux.mux_branches)
        assert ports == [0, 1, 2]

    def test_leaf_set_equals_primitive_set(self, fig1_network):
        tree = decompose(fig1_network)
        leaf_names = {leaf.primitive for leaf in tree.primitive_leaves()}
        expected = {
            node.name
            for node in fig1_network.nodes()
            if node.kind.value in ("segment", "mux")
        }
        assert leaf_names == expected

    def test_each_primitive_appears_once(self, fig1_network):
        tree = decompose(fig1_network)
        names = [leaf.primitive for leaf in tree.primitive_leaves()]
        assert len(names) == len(set(names))

    def test_fig1_serial_order(self, fig1_network):
        tree = decompose(fig1_network)
        order = [leaf.primitive for leaf in tree.primitive_leaves()]
        # the mux closing a region comes right after its branches
        assert order.index("m1") > order.index("a")
        assert order.index("m1") > order.index("b")
        assert order.index("m0") > order.index("c2")
        assert order.index("m0") > order.index("d")
        assert order[-1] == "m2"


class TestNonSeriesParallel:
    def _bridge_network(self):
        """A Wheatstone-bridge-like RSN: branch crossing prevents SP
        reduction."""
        net = RsnNetwork("bridge")
        net.add_scan_in()
        net.add_scan_out()
        net.add_segment("sel1", role=SegmentRole.CONTROL)
        net.add_fanout("f1")
        net.add_segment("a")
        net.add_segment("b")
        net.add_fanout("fa")
        net.add_mux("m1", fanin=2, control_cell="sel1")
        net.add_mux("m2", fanin=2, control_cell="sel1")
        net.add_segment("tail")
        net.add_edge("scan_in", "sel1")
        net.add_edge("sel1", "f1")
        net.add_edge("f1", "a")
        net.add_edge("f1", "b")
        net.add_edge("a", "fa")
        net.add_edge("fa", "m1")  # m1 port 0
        net.add_edge("b", "m1")  # m1 port 1
        net.add_edge("m1", "m2")  # m2 port 0  (cross edge)
        net.add_edge("fa", "m2")  # m2 port 1
        net.add_edge("m2", "tail")
        net.add_edge("tail", "scan_out")
        return net

    def test_bridge_detected(self):
        net = self._bridge_network()
        net.validate()
        assert not is_series_parallel(net)

    def test_bridge_raises_with_diagnostics(self):
        with pytest.raises(NotSeriesParallelError) as excinfo:
            decompose(self._bridge_network())
        assert excinfo.value.blocked_edges

    def test_sp_predicate_true_on_sp(self, fig1_network):
        assert is_series_parallel(fig1_network)
