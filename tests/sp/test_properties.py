"""Property-based tests of the SP decomposition on random RSNs."""

from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.graph import fanout_stems
from repro.graph.reconvergence import closing_reconvergence_fast
from repro.rsn.ast import elaborate
from repro.rsn.primitives import NodeKind
from repro.sp import SPKind, decompose

seeds = st.integers(min_value=0, max_value=100_000)


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_every_generated_network_is_series_parallel(seed):
    network = elaborate(random_network(seed=seed))
    tree = decompose(network)
    assert tree.root is not None


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_leaves_bijective_with_primitives(seed):
    network = elaborate(random_network(seed=seed))
    tree = decompose(network)
    leaf_names = [leaf.primitive for leaf in tree.primitive_leaves()]
    primitive_names = {
        node.name
        for node in network.nodes()
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX)
    }
    assert len(leaf_names) == len(set(leaf_names))
    assert set(leaf_names) == primitive_names


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_serial_order_extends_topological_order(seed):
    """If u precedes v on every path (u dominates v's reachability), the
    leaf order must agree; we check the weaker, easily-computed fact that
    graph edges between primitives never point right-to-left in leaf
    order unless the endpoints are parallel siblings."""
    network = elaborate(random_network(seed=seed))
    tree = decompose(network)
    tree.annotate_ranges()
    position = {
        leaf.primitive: tree.leaf_index(leaf)
        for leaf in tree.primitive_leaves()
    }
    topo = network.topological_order()
    topo_pos = {name: k for k, name in enumerate(topo)}
    # primitives only
    for name, pos in position.items():
        for succ in network.successors(name):
            if succ in position:
                assert topo_pos[name] < topo_pos[succ]


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_every_mux_leaf_has_full_port_coverage(seed):
    network = elaborate(random_network(seed=seed))
    tree = decompose(network)
    for mux in network.muxes():
        leaf = tree.leaf(mux.name)
        assert leaf.mux_branches is not None
        covered = set()
        for ports, _ in leaf.mux_branches:
            assert not (covered & ports), "port appears in two branches"
            covered |= ports
        assert covered == set(range(mux.fanin))


@settings(max_examples=60, deadline=None)
@given(seed=seeds)
def test_subtree_ranges_partition_at_parallel_nodes(seed):
    network = elaborate(random_network(seed=seed))
    tree = decompose(network)
    tree.annotate_ranges()
    for node in tree.root.post_order():
        if node.kind is SPKind.PARALLEL:
            assert node.left.hi + 1 == node.right.lo


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_parent_mux_equals_graph_closing_reconvergence(seed):
    """The tree-derived parent of a primitive inside a branch equals the
    closing reconvergence of the branch's fan-out stem (the graph-level
    definition of Sec. III)."""
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    tree = decompose(network)
    closing_of_stem = {
        stem: closing_reconvergence_fast(network, stem)
        for stem in fanout_stems(network)
    }
    closings = {gate for gate in closing_of_stem.values() if gate}
    for leaf in tree.primitive_leaves():
        parent = tree.parent_mux(leaf)
        if parent is not None:
            assert parent.primitive in closings


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_mux_branch_subtrees_cover_stem_region(seed):
    """The union of a mux's branch subtrees equals its stem region minus
    the mux itself (graph-level cross-check)."""
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    tree = decompose(network)
    from repro.graph import stem_region

    post = {}
    for stem in fanout_stems(network):
        gate = closing_reconvergence_fast(network, stem)
        if gate:
            post[gate] = stem_region(network, stem)
    for mux in network.muxes():
        if mux.name not in post:
            continue
        leaf = tree.leaf(mux.name)
        branch_primitives = set()
        for _, subtree in leaf.mux_branches:
            branch_primitives.update(
                inner.primitive
                for inner in subtree.in_order_leaves()
                if inner.kind is SPKind.LEAF
            )
        region_primitives = {
            name
            for name in post[mux.name]
            if network.node(name).kind in (NodeKind.SEGMENT, NodeKind.MUX)
        } - {mux.name}
        assert branch_primitives == region_primitives
