"""Campaign jobs through the HTTP service: results bit-identical to
direct runs, per-job progress in the status JSON, campaign counters in
``/metrics``, and checkpoint resume across job submissions.
"""

import threading

import pytest

from repro.analysis import GraphDamageAnalysis
from repro.bench import build_design
from repro.campaigns import (
    DiagnosisPlan,
    KFaultPlan,
    MonteCarloPlan,
    run_campaign,
)
from repro.service import AnalysisService, ServiceClient, make_server
from repro.service.client import ServiceClientError
from repro.spec import spec_for_network


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = AnalysisService(
        cache_dir=str(tmp_path_factory.mktemp("campaign-cache")),
        workers=2,
    )
    yield svc
    svc.close(drain=False, timeout=10.0)


@pytest.fixture(scope="module")
def client(service):
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}", timeout=120.0)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.upload_network(design="TreeFlat")["fingerprint"]


def _direct(plan, **kwargs):
    network = build_design("TreeFlat")
    spec = spec_for_network(network, seed=0)
    analysis = GraphDamageAnalysis(network, spec, backend="bitset")
    return run_campaign(analysis, plan, **kwargs)


class TestCampaignJobs:
    def test_montecarlo_job_matches_direct_run(self, client, fingerprint):
        plan = MonteCarloPlan(
            rates=(0.01, 0.05), samples=120, seed=1, sampler="vectorized"
        )
        record = client.campaign(fingerprint, plan)
        result = record["result"]
        assert result["outcome"] == "completed"
        assert result["records"] == _direct(plan)["records"]
        assert record["params"]["campaign"] == "montecarlo"
        assert record["params"]["plan"] == plan.as_dict()

    def test_scalar_sampler_job_matches_direct_run(
        self, client, fingerprint
    ):
        plan = MonteCarloPlan(
            rates=(0.05,), samples=80, seed=2, sampler="scalar",
            bootstrap=0,
        )
        record = client.campaign(fingerprint, plan)
        assert record["result"]["records"] == _direct(plan)["records"]

    def test_kfault_job_matches_direct_run(self, client, fingerprint):
        plan = KFaultPlan(k=2, top=5)
        record = client.campaign(fingerprint, plan)
        assert record["result"]["summary"] == _direct(plan)["summary"]

    def test_diagnosis_job_matches_direct_run(self, client, fingerprint):
        plan = DiagnosisPlan(observations=120, seed=0)
        record = client.campaign(fingerprint, plan)
        result = record["result"]
        assert result["summary"] == _direct(plan)["summary"]
        assert result["summary"]["observations_evaluated"] == 120

    def test_progress_surfaces_in_job_status(self, client, fingerprint):
        plan = MonteCarloPlan(
            rates=(0.02,), samples=64, seed=3, block_lanes=16
        )
        record = client.campaign(fingerprint, plan)
        # Terminal status carries the final fraction.
        assert record["progress"] == 1.0
        # Non-campaign jobs keep a null progress field.
        sleep = client.submit(kind="sleep", seconds=0.0)
        done = client.wait(sleep["id"], timeout=30.0)
        assert done["progress"] is None

    def test_checkpoint_resume_across_submissions(
        self, client, fingerprint
    ):
        plan = MonteCarloPlan(
            rates=(0.03,), samples=96, seed=4, block_lanes=16
        )
        first = client.campaign(fingerprint, plan)
        again = client.campaign(fingerprint, plan)
        result = again["result"]
        # Same payload -> same checkpoint file -> every block replays.
        assert result["blocks_resumed"] == result["blocks_total"]
        assert result["records"] == first["result"]["records"]

    def test_no_resume_flag_recomputes(self, client, fingerprint):
        plan = MonteCarloPlan(
            rates=(0.03,), samples=96, seed=5, block_lanes=16
        )
        client.campaign(fingerprint, plan)
        fresh = client.campaign(fingerprint, plan, resume=False)
        assert fresh["result"]["blocks_resumed"] == 0

    def test_campaign_metrics_exported(self, client, fingerprint):
        client.campaign(
            fingerprint,
            MonteCarloPlan(rates=(0.01,), samples=32, seed=6),
        )
        text = client.metrics()
        assert (
            'repro_campaign_blocks_total{kind="montecarlo", '
            'origin="computed"}' in text
        )
        assert (
            'repro_campaign_runs_total{kind="montecarlo", '
            'outcome="completed"}' in text
        )
        assert (
            'repro_campaign_units_total{kind="montecarlo", '
            'unit="samples"}' in text
        )
        assert "repro_campaign_block_seconds" in text
        assert 'repro_jobs_total{kind="campaign", ' in text

    def test_malformed_plans_rejected(self, client, fingerprint):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(
                kind="campaign",
                fingerprint=fingerprint,
                campaign={"kind": "nope"},
            )
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(kind="campaign", fingerprint=fingerprint)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(
                kind="campaign",
                fingerprint=fingerprint,
                campaign={"kind": "montecarlo", "rates": [0.1], "bogus": 1},
            )
        assert excinfo.value.status == 400

    def test_unknown_fingerprint_is_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit(
                kind="campaign",
                fingerprint="f" * 64,
                campaign={"kind": "kfault"},
            )
        assert excinfo.value.status == 404
