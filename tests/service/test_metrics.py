"""Prometheus text-format rendering of the stdlib metrics registry."""

import math
import threading

import pytest

from repro.service.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_renders_help_type_and_value(registry):
    counter = registry.counter("jobs_total", "Jobs.", ("kind",))
    counter.inc(kind="analyze")
    counter.inc(2, kind="analyze")
    counter.inc(kind="harden")
    text = registry.render()
    assert "# HELP jobs_total Jobs." in text
    assert "# TYPE jobs_total counter" in text
    assert 'jobs_total{kind="analyze"} 3' in text
    assert 'jobs_total{kind="harden"} 1' in text


def test_counter_rejects_decrease_and_wrong_labels(registry):
    counter = registry.counter("c", "c.", ("kind",))
    with pytest.raises(ValueError):
        counter.inc(-1, kind="x")
    with pytest.raises(ValueError):
        counter.inc(other="x")
    with pytest.raises(ValueError):
        counter.inc()


def test_unlabelled_counter_renders_zero_before_first_inc(registry):
    registry.counter("requests_total", "Requests.")
    assert "requests_total 0" in registry.render()


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("depth", "Depth.")
    gauge.set(5)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value() == 4
    assert "depth 4" in registry.render()


def test_histogram_cumulative_buckets_sum_count(registry):
    histogram = registry.histogram("lat", "Latency.", buckets=(0.1, 1, 10))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    text = registry.render()
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="1"} 3' in text
    assert 'lat_bucket{le="10"} 4' in text
    assert 'lat_bucket{le="+Inf"} 5' in text
    assert "lat_count 5" in text
    assert histogram.count() == 5
    assert histogram.sum() == pytest.approx(56.05)


def test_histogram_labels_and_inf_bucket_appended(registry):
    histogram = registry.histogram(
        "h", "H.", ("path",), buckets=(1.0,)
    )
    assert histogram.buckets[-1] == math.inf
    histogram.observe(0.5, path="/jobs")
    text = registry.render()
    assert 'h_bucket{path="/jobs", le="1"} 1' in text
    assert 'h_sum{path="/jobs"}' in text


def test_duplicate_metric_name_rejected(registry):
    registry.counter("dup", "d.")
    with pytest.raises(ValueError):
        registry.gauge("dup", "d.")


def test_label_value_escaping(registry):
    counter = registry.counter("e", "e.", ("path",))
    counter.inc(path='weird"path\nwith\\stuff')
    line = [
        line for line in registry.render().splitlines()
        if line.startswith("e{")
    ][0]
    assert '\\"' in line and "\\n" in line and "\\\\" in line


def test_concurrent_increments_are_not_lost(registry):
    counter = registry.counter("n", "n.")
    histogram = registry.histogram("nh", "nh.", buckets=(1,))

    def spin():
        for _ in range(1000):
            counter.inc()
            histogram.observe(0.5)

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value() == 8000
    assert histogram.count() == 8000
