"""HTTP-level observability: /version, X-Trace-Id, connected traces.

The end-to-end acceptance check lives here: one ``POST /damage`` against
a tracing-enabled service must yield one connected trace — the HTTP root
span, the coalescer dispatch that served the request and the kernel
sweep spans beneath it — retrievable as valid Chrome trace JSON under
the same ``X-Trace-Id`` the response echoed.
"""

import json
import threading

import pytest

from repro import __version__
from repro.analysis import ANALYSIS_VERSION
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.ir import IR_VERSION
from repro.obs import disable_tracing
from repro.service import AnalysisService, ServiceClient, make_server
from repro.service.client import ServiceClientError


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = AnalysisService(
        cache_dir=str(tmp_path_factory.mktemp("tracing-cache")),
        workers=2,
        batch_window=0.02,
        tracing=True,
    )
    yield svc
    svc.close(drain=False, timeout=10.0)
    disable_tracing()


@pytest.fixture(scope="module")
def client(service):
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}", timeout=120.0)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.upload_network(design="TreeFlat")["fingerprint"]


class TestVersionEndpoint:
    def test_reports_every_versioned_layer(self, client):
        payload = client.version()
        assert payload == {
            "version": __version__,
            "analysis_version": ANALYSIS_VERSION,
            "ir_version": IR_VERSION,
        }


class TestTraceIdHeader:
    def test_every_response_carries_a_trace_id(self, client):
        client.healthz()
        assert client.last_trace_id
        assert len(client.last_trace_id) == 32

    def test_client_supplied_id_is_echoed(self, client):
        client._request("GET", "/healthz", trace_id="my-trace-0001")
        assert client.last_trace_id == "my-trace-0001"

    def test_fresh_ids_differ_between_requests(self, client):
        client.healthz()
        first = client.last_trace_id
        client.healthz()
        assert client.last_trace_id != first

    def test_error_bodies_carry_the_trace_id(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("no-such-job")
        assert excinfo.value.status == 404
        # Re-issue via urllib to read the raw body alongside the header.
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            f"{client.base_url}/jobs/no-such-job",
            headers={"X-Trace-Id": "err-trace-0001"},
        )
        try:
            urllib.request.urlopen(request, timeout=30.0)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as error:
            body = json.loads(error.read().decode("utf-8"))
            assert error.headers.get("X-Trace-Id") == "err-trace-0001"
        assert body["trace_id"] == "err-trace-0001"
        assert "error" in body


class TestConnectedDamageTrace:
    def test_one_post_damage_yields_one_connected_trace(
        self, client, fingerprint
    ):
        network = build_design("TreeFlat")
        faults = list(iter_all_faults(network))[:5]
        trace_id = "damage-trace-0001"
        damages = client.damage(fingerprint, faults, trace_id=trace_id)
        assert len(damages) == len(faults)
        assert client.last_trace_id == trace_id

        document = client.trace(trace_id)
        # Valid Chrome trace_event JSON: round-trips through json and
        # has the expected envelope.
        document = json.loads(json.dumps(document))
        assert document["displayTimeUnit"] == "ms"
        events = [
            e for e in document["traceEvents"] if e["ph"] == "X"
        ]
        assert {e["args"]["trace_id"] for e in events} == {trace_id}
        names = {e["name"] for e in events}
        assert "http.request" in names
        assert "service.damage" in names
        assert "coalescer.dispatch" in names
        assert "batch.sweep" in names  # the kernel itself

        # Connectivity: exactly one root, every other span's parent is
        # present in the same trace.
        span_ids = {e["args"]["span_id"] for e in events}
        roots = [e for e in events if "parent_id" not in e["args"]]
        assert [e["name"] for e in roots] == ["http.request"]
        for event in events:
            parent = event["args"].get("parent_id")
            if parent is not None:
                assert parent in span_ids

    def test_unknown_trace_id_is_a_404(self, client):
        with pytest.raises(ServiceClientError) as excinfo:
            client.trace("definitely-not-a-trace")
        assert excinfo.value.status == 404


class TestTracingDisabledService:
    def test_trace_endpoint_404s_without_tracing(self, tmp_path):
        from repro.obs import current_collector, enable_tracing

        # Tracing is process-global; park the module service's collector
        # so this service really runs untraced, then restore it.
        saved = current_collector()
        disable_tracing()
        svc = AnalysisService(
            cache_dir=str(tmp_path / "cache"), workers=1, tracing=False
        )
        server = make_server(svc, port=0)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        host, port = server.server_address[:2]
        plain = ServiceClient(f"http://{host}:{port}", timeout=30.0)
        try:
            plain.healthz()
            assert plain.last_trace_id  # ids are assigned regardless
            with pytest.raises(ServiceClientError) as excinfo:
                plain.trace(plain.last_trace_id)
            assert excinfo.value.status == 404
        finally:
            server.shutdown()
            thread.join(timeout=10.0)
            server.server_close()
            svc.close(drain=False, timeout=10.0)
            if saved is not None:
                enable_tracing(saved)
