"""Network registry: uploads, fingerprint keying, dedupe, memoization."""

import threading

import pytest

from repro.bench import build_design
from repro.bench.designs import get_design
from repro.ir import intern
from repro.rsn import icl
from repro.rsn.ast import decl_from_dict, decl_to_dict, elaborate
from repro.service.registry import NetworkRegistry, RegistryError


@pytest.fixture
def registry():
    return NetworkRegistry()


@pytest.fixture
def tree_decl():
    return get_design("TreeFlat").generate()


def test_add_icl_keys_by_ir_fingerprint(registry, tree_decl):
    entry = registry.add_icl(icl.dumps(tree_decl))
    assert entry.fingerprint == intern(build_design("TreeFlat")).fingerprint
    assert entry.source == "icl"
    assert registry.get(entry.fingerprint) is entry
    assert entry.fingerprint in registry
    assert len(registry) == 1


def test_add_design_and_describe(registry):
    entry = registry.add_design("TreeFlat")
    description = entry.describe()
    assert description["fingerprint"] == entry.fingerprint
    assert description["n_segments"] == 24
    assert description["n_muxes"] == 24
    assert description["source"] == "design"
    assert description["n_nodes"] == entry.ir.n_nodes


def test_json_declaration_round_trip(tree_decl):
    payload = decl_to_dict(tree_decl)
    assert decl_from_dict(payload) == tree_decl


def test_add_json_equals_add_icl(registry, tree_decl):
    json_entry = registry.add_json(decl_to_dict(tree_decl))
    icl_entry = registry.add_icl(icl.dumps(tree_decl))
    # Same structure from two source formats: one interned entry.
    assert json_entry is icl_entry
    assert len(registry) == 1


def test_add_dispatch(registry, tree_decl):
    assert registry.add({"design": "TreeFlat"}).source == "design"
    assert (
        registry.add({"icl": icl.dumps(tree_decl)}).fingerprint
        == registry.add({"network": decl_to_dict(tree_decl)}).fingerprint
    )


@pytest.mark.parametrize(
    "payload",
    [
        {},
        {"icl": "x", "design": "TreeFlat"},
        {"unknown": 1},
        "not a mapping",
    ],
)
def test_add_rejects_malformed_payloads(registry, payload):
    with pytest.raises(RegistryError):
        registry.add(payload)


def test_unknown_design_and_fingerprint_raise(registry):
    with pytest.raises(RegistryError):
        registry.add_design("NoSuchDesign")
    with pytest.raises(RegistryError):
        registry.get("deadbeef")


def test_spec_memoized_per_seed(registry):
    entry = registry.add_design("TreeFlat")
    spec_a = registry.spec(entry.fingerprint, seed=0)
    spec_b = registry.spec(entry.fingerprint, seed=0)
    spec_c = registry.spec(entry.fingerprint, seed=1)
    assert spec_a is spec_b
    assert spec_a is not spec_c
    assert spec_a.to_dict() != spec_c.to_dict()


def test_batch_analysis_memoized_per_seed_and_policy(registry):
    entry = registry.add_design("TreeFlat")
    a = registry.batch_analysis(entry.fingerprint, seed=0, policy="max")
    assert registry.batch_analysis(entry.fingerprint, 0, "max") is a
    assert registry.batch_analysis(entry.fingerprint, 0, "sum") is not a
    assert registry.batch_analysis(entry.fingerprint, 1, "max") is not a


def test_elaborated_network_matches_builder(registry, tree_decl):
    entry = registry.add_json(decl_to_dict(tree_decl))
    direct = elaborate(tree_decl)
    assert intern(direct).fingerprint == entry.fingerprint


def test_concurrent_uploads_dedupe(registry, tree_decl):
    text = icl.dumps(tree_decl)
    entries = []

    def upload():
        entries.append(registry.add_icl(text))

    threads = [threading.Thread(target=upload) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(registry) == 1
    assert len({id(e) for e in entries}) == 1
