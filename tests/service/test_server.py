"""End-to-end HTTP acceptance tests for the batching analysis server.

Covers the ISSUE acceptance criteria: HTTP damage results bit-identical
to direct :class:`GraphDamageAnalysis` for single and >=128 concurrent
coalesced requests (occupancy > 1 in ``/metrics``), repeated analyze as
an engine cache hit observable via job stats, and ``/healthz`` +
``/metrics`` answering while a long job is in flight.
"""

import itertools
import threading
import time

import pytest

from repro.analysis import GraphDamageAnalysis
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.ir import intern
from repro.rsn import icl
from repro.rsn.ast import decl_to_dict
from repro.bench.designs import get_design
from repro.service import AnalysisService, ServiceClient, make_server
from repro.service.client import ServiceClientError
from repro.spec import spec_for_network


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = AnalysisService(
        cache_dir=str(tmp_path_factory.mktemp("service-cache")),
        workers=2,
        batch_window=0.05,
    )
    yield svc
    svc.close(drain=False, timeout=10.0)


@pytest.fixture(scope="module")
def client(service):
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}", timeout=120.0)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


@pytest.fixture(scope="module")
def fingerprint(client):
    entry = client.upload_network(design="TreeFlat")
    return entry["fingerprint"]


def _metric_value(metrics_text, name):
    for line in metrics_text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[-1])
    raise AssertionError(f"metric {name} not found")


def test_healthz_reports_versions(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["version"]
    assert health["analysis_version"]
    assert "queue_depth" in health


def test_upload_dedupes_across_source_formats(client, fingerprint):
    decl = get_design("TreeFlat").generate()
    via_icl = client.upload_network(icl=icl.dumps(decl))
    via_json = client.upload_network(network_json=decl_to_dict(decl))
    expected = intern(build_design("TreeFlat")).fingerprint
    assert fingerprint == expected
    assert via_icl["fingerprint"] == expected
    assert via_json["fingerprint"] == expected
    names = [n["fingerprint"] for n in client.networks()]
    assert names.count(expected) == 1


def test_upload_rejects_malformed_payload(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client.upload_network()
    assert excinfo.value.status == 400


def test_unknown_routes_and_ids_are_404(client):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request("GET", "/nope")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceClientError) as excinfo:
        client.job("feedfacecafe")
    assert excinfo.value.status == 404
    with pytest.raises(ServiceClientError) as excinfo:
        client.submit(kind="analyze", fingerprint="f" * 64)
    assert excinfo.value.status == 404


def test_single_damage_request_matches_direct_analysis(
    client, fingerprint
):
    network = build_design("TreeFlat")
    graph = GraphDamageAnalysis(
        network, spec_for_network(network, seed=0), policy="max"
    )
    fault = next(iter_all_faults(network))
    damages = client.damage(fingerprint, [fault])
    assert damages == [graph.damage_of_fault(fault)]


def test_128_concurrent_requests_coalesce_bit_identically(
    client, service, fingerprint
):
    """>=128 concurrent single-fault HTTP queries: every response equals
    the direct graph analysis, and /metrics proves at least one batch
    held more than one request (occupancy > 1)."""
    network = build_design("TreeFlat")
    graph = GraphDamageAnalysis(
        network, spec_for_network(network, seed=0), policy="max"
    )
    all_faults = list(iter_all_faults(network))
    faults = list(itertools.islice(itertools.cycle(all_faults), 128))
    expected = [graph.damage_of_fault(fault) for fault in faults]

    results = [None] * len(faults)
    errors = []
    barrier = threading.Barrier(len(faults))

    def query(index, fault):
        try:
            barrier.wait(timeout=30.0)
            results[index] = client.damage(fingerprint, [fault])[0]
        except Exception as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=query, args=(i, fault))
        for i, fault in enumerate(faults)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)
    assert not errors
    assert results == expected

    metrics = client.metrics()
    dispatches = _metric_value(metrics, "repro_batch_occupancy_count")
    requests = _metric_value(metrics, "repro_batch_occupancy_sum")
    assert requests >= 128
    # Mean occupancy > 1 means concurrent requests genuinely shared
    # kernel passes instead of dispatching one-by-one.
    assert requests > dispatches


def test_multi_fault_damage_matches_direct_vector(client, fingerprint):
    network = build_design("TreeFlat")
    graph = GraphDamageAnalysis(
        network, spec_for_network(network, seed=0), policy="max"
    )
    faults = list(iter_all_faults(network))[:7]
    damages = client.damage(fingerprint, faults)
    assert damages == [graph.damage_of_fault(f) for f in faults]


def test_analyze_job_parity_and_second_run_is_cache_hit(
    client, fingerprint
):
    params = {"method": "graph", "backend": "bitset", "seed": 0}
    first = client.analyze(fingerprint, **params)
    second = client.analyze(fingerprint, **params)

    network = build_design("TreeFlat")
    direct = GraphDamageAnalysis(
        network,
        spec_for_network(network, seed=0),
        policy="max",
        backend="bitset",
    ).report()
    report = first["result"]["report"]
    assert report["primitive_damage"] == direct.primitive_damage
    assert report["unit_damage"] == direct.unit_damage
    assert report["total"] == direct.total

    # Identical job resubmitted: served from the engine's disk cache.
    assert first["result"]["stats"]["cache"] == "miss"
    assert second["result"]["stats"]["cache"] == "hit"
    assert second["result"]["report"] == report
    metrics = client.metrics()
    assert 'repro_engine_cache_total{outcome="hit"}' in metrics


def test_healthz_and_metrics_respond_during_long_job(client):
    job = client.submit(kind="sleep", seconds=30.0)
    try:
        deadline = time.monotonic() + 10.0
        while client.job(job["id"])["status"] != "running":
            assert time.monotonic() < deadline, "sleep job never started"
            time.sleep(0.02)
        # The sleep job occupies a worker; liveness endpoints must still
        # answer from their own request threads.
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["jobs"]["running"] >= 1
        metrics = client.metrics()
        assert "repro_jobs_total" in metrics
        record = client.job(job["id"])
        assert record["status"] == "running"
    finally:
        cancelled = client.cancel(job["id"])
    assert cancelled["status"] in ("running", "cancelled")
    deadline_record = client.job(job["id"])
    assert deadline_record["kind"] == "sleep"


def test_job_listing_and_params_round_trip(client, fingerprint):
    job = client.submit(
        kind="analyze", fingerprint=fingerprint, seed=3, policy="sum"
    )
    record = client.wait(job["id"])
    assert record["params"]["seed"] == 3
    assert record["params"]["policy"] == "sum"
    assert any(j["id"] == job["id"] for j in client.jobs())


def test_metrics_content_type_is_prometheus_text(client, fingerprint):
    metrics = client.metrics()
    assert isinstance(metrics, str)
    assert "# TYPE repro_http_requests_total counter" in metrics
    assert 'path="/jobs/{id}"' in metrics  # normalized route label


def test_bad_fault_payload_is_rejected(client, fingerprint):
    with pytest.raises(ServiceClientError) as excinfo:
        client._request(
            "POST",
            "/damage",
            {
                "fingerprint": fingerprint,
                "faults": [{"kind": "wormhole"}],
            },
        )
    assert excinfo.value.status == 400
