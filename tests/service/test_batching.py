"""Micro-batching coalescer: merging, scatter ordering, error fan-out."""

import threading
import time

import pytest

from repro.analysis import BatchFaultAnalysis, GraphDamageAnalysis
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.spec import spec_for_network
from repro.errors import ReproError
from repro.service.batching import BatchCoalescer


def _doubler(faults):
    return [float(f) * 2.0 for f in faults]


def test_single_request_round_trips():
    coalescer = BatchCoalescer(window=0.001)
    try:
        future = coalescer.submit("k", _doubler, [1, 2, 3])
        assert future.result(timeout=5.0) == [2.0, 4.0, 6.0]
    finally:
        coalescer.close()


def test_empty_fault_list_resolves_immediately():
    coalescer = BatchCoalescer(window=60.0)
    try:
        future = coalescer.submit("k", _doubler, [])
        assert future.result(timeout=0.1) == []
    finally:
        coalescer.close()


def test_concurrent_requests_share_one_solve():
    calls = []

    def solve(faults):
        calls.append(list(faults))
        return _doubler(faults)

    batches = []
    coalescer = BatchCoalescer(
        window=0.08,
        on_batch=lambda occupancy, lanes, age: batches.append(
            (occupancy, lanes)
        ),
    )
    try:
        futures = [
            coalescer.submit("k", solve, [i]) for i in range(16)
        ]
        results = [f.result(timeout=5.0) for f in futures]
        assert results == [[float(i * 2)] for i in range(16)]
        # All 16 single-fault requests were merged into one kernel call.
        assert len(calls) == 1
        assert sorted(calls[0]) == list(range(16))
        assert batches == [(16, 16)]
    finally:
        coalescer.close()


def test_scatter_preserves_per_request_order():
    coalescer = BatchCoalescer(window=0.05)
    try:
        first = coalescer.submit("k", _doubler, [5, 1])
        second = coalescer.submit("k", _doubler, [3])
        third = coalescer.submit("k", _doubler, [9, 7, 8])
        assert first.result(timeout=5.0) == [10.0, 2.0]
        assert second.result(timeout=5.0) == [6.0]
        assert third.result(timeout=5.0) == [18.0, 14.0, 16.0]
    finally:
        coalescer.close()


def test_distinct_keys_do_not_share_batches():
    calls = []

    def solve(faults):
        calls.append(list(faults))
        return _doubler(faults)

    coalescer = BatchCoalescer(window=0.05)
    try:
        a = coalescer.submit("a", solve, [1])
        b = coalescer.submit("b", solve, [2])
        a.result(timeout=5.0)
        b.result(timeout=5.0)
        assert sorted(calls) == [[1], [2]]
    finally:
        coalescer.close()


def test_max_faults_triggers_early_dispatch():
    coalescer = BatchCoalescer(window=60.0, max_faults=4)
    try:
        futures = [coalescer.submit("k", _doubler, [i, i]) for i in range(2)]
        # 4 lanes parked >= max_faults: dispatch fires long before the
        # 60 s window closes.
        for i, future in enumerate(futures):
            assert future.result(timeout=5.0) == [float(i * 2)] * 2
    finally:
        coalescer.close()


def test_solver_exception_fans_out_to_all_futures():
    def explode(faults):
        raise RuntimeError("kernel died")

    coalescer = BatchCoalescer(window=0.02)
    try:
        futures = [coalescer.submit("k", explode, [i]) for i in range(3)]
        for future in futures:
            with pytest.raises(RuntimeError, match="kernel died"):
                future.result(timeout=5.0)
    finally:
        coalescer.close()


def test_length_mismatch_is_an_error():
    coalescer = BatchCoalescer(window=0.01)
    try:
        future = coalescer.submit("k", lambda faults: [1.0, 2.0], [7])
        with pytest.raises(ReproError, match="2 damages for 1 faults"):
            future.result(timeout=5.0)
    finally:
        coalescer.close()


def test_flush_dispatches_without_waiting_for_window():
    coalescer = BatchCoalescer(window=60.0)
    try:
        future = coalescer.submit("k", _doubler, [4])
        coalescer.flush()
        assert future.result(timeout=1.0) == [8.0]
    finally:
        coalescer.close()


def test_close_flushes_backlog_and_rejects_new_requests():
    coalescer = BatchCoalescer(window=60.0)
    future = coalescer.submit("k", _doubler, [1])
    coalescer.close()
    assert future.result(timeout=1.0) == [2.0]
    with pytest.raises(ReproError, match="closed"):
        coalescer.submit("k", _doubler, [2])
    coalescer.close()  # idempotent


def test_rejects_bad_parameters():
    with pytest.raises(ReproError):
        BatchCoalescer(window=-1.0)
    with pytest.raises(ReproError):
        BatchCoalescer(max_faults=0)


def test_coalesced_kernel_results_bit_identical_to_direct():
    """The acceptance property at the coalescer level: concurrent
    single-fault submissions against the real bitset kernel resolve to
    exactly the damages the graph analysis computes fault-by-fault."""
    network = build_design("TreeFlat")
    spec = spec_for_network(network, seed=0)
    batch = BatchFaultAnalysis(network, spec, policy="max")
    graph = GraphDamageAnalysis(network, spec, policy="max")
    faults = list(iter_all_faults(network))

    coalescer = BatchCoalescer(window=0.05)
    try:
        results = [None] * len(faults)
        barrier = threading.Barrier(len(faults[:24]) + 1)

        def query(index, fault):
            barrier.wait(timeout=10.0)
            future = coalescer.submit(
                "tree", batch.damage_vector, [fault]
            )
            results[index] = future.result(timeout=10.0)[0]

        threads = [
            threading.Thread(target=query, args=(i, fault))
            for i, fault in enumerate(faults[:24])
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=10.0)
        for thread in threads:
            thread.join(timeout=15.0)
        for i, fault in enumerate(faults[:24]):
            assert results[i] == graph.damage_of_fault(fault)
    finally:
        coalescer.close()


def test_dispatcher_latency_bounded_by_window():
    coalescer = BatchCoalescer(window=0.02)
    try:
        start = time.monotonic()
        coalescer.submit("k", _doubler, [1]).result(timeout=5.0)
        # One window plus scheduling slack, not the 60 s worst case.
        assert time.monotonic() - start < 2.0
    finally:
        coalescer.close()
