"""Future-returning solvers in the coalescer (the shard-pool plug-in).

`BatchCoalescer._dispatch` must not block the dispatcher thread when a
solver hands back a :class:`~concurrent.futures.Future`: the scatter
runs from the done-callback, `drain` waits for in-flight solves, and
`close` still guarantees every accepted request resolves.
"""

import threading
import time
from concurrent.futures import Future

import pytest

from repro.errors import ReproError
from repro.service import BatchCoalescer


class ManualSolver:
    """Records each dispatched batch; the test resolves it by hand."""

    def __init__(self):
        self.calls = []
        self._ready = threading.Event()

    def __call__(self, faults):
        future = Future()
        self.calls.append((list(faults), future))
        self._ready.set()
        return future

    def wait_called(self, n=1, timeout=5.0):
        deadline = time.monotonic() + timeout
        while len(self.calls) < n:
            if time.monotonic() >= deadline:
                raise AssertionError(
                    f"solver called {len(self.calls)} times, wanted {n}"
                )
            time.sleep(0.005)


def test_scatter_runs_from_done_callback():
    coalescer = BatchCoalescer(window=0.02)
    solver = ManualSolver()
    try:
        first = coalescer.submit("k", solver, ["a", "b"])
        second = coalescer.submit("k", solver, ["c"])
        solver.wait_called(1)
        merged, batch_future = solver.calls[0]
        assert merged == ["a", "b", "c"]
        assert not first.done() and not second.done()
        batch_future.set_result([1.0, 2.0, 3.0])
        assert first.result(timeout=5.0) == [1.0, 2.0]
        assert second.result(timeout=5.0) == [3.0]
    finally:
        coalescer.close(timeout=1.0)


def test_dispatcher_not_blocked_by_unresolved_future():
    # Two keys, two shards: the second batch must dispatch while the
    # first one's future is still pending — the old synchronous
    # dispatcher would have sat in solve() and serialized them.
    coalescer = BatchCoalescer(window=0.0)
    slow, fast = ManualSolver(), ManualSolver()
    try:
        slow_future = coalescer.submit("slow", slow, ["x"])
        fast_future = coalescer.submit("fast", fast, ["y"])
        fast.wait_called(1)
        slow.wait_called(1)
        assert not slow.calls[0][1].done()
        fast.calls[0][1].set_result([7.0])
        assert fast_future.result(timeout=5.0) == [7.0]
        assert not slow_future.done()
        slow.calls[0][1].set_result([9.0])
        assert slow_future.result(timeout=5.0) == [9.0]
    finally:
        coalescer.close(timeout=1.0)


def test_drain_waits_for_inflight_solves():
    coalescer = BatchCoalescer(window=60.0)  # park until flushed
    solver = ManualSolver()
    try:
        request = coalescer.submit("k", solver, ["a"])
        # drain flushes the parked batch, but the async solve is still
        # pending: a bounded drain reports the leftover truthfully.
        assert coalescer.drain(timeout=0.05) is False
        solver.wait_called(1)
        resolver = threading.Timer(
            0.05, solver.calls[0][1].set_result, args=([4.0],)
        )
        resolver.start()
        assert coalescer.drain(timeout=5.0) is True
        assert request.result(timeout=1.0) == [4.0]
    finally:
        coalescer.close(timeout=1.0)


def test_async_solver_error_fails_every_request():
    coalescer = BatchCoalescer(window=0.01)
    solver = ManualSolver()
    try:
        futures = [
            coalescer.submit("k", solver, [f"f{i}"]) for i in range(3)
        ]
        solver.wait_called(1)
        solver.calls[0][1].set_exception(ReproError("worker crashed"))
        for future in futures:
            with pytest.raises(ReproError, match="worker crashed"):
                future.result(timeout=5.0)
    finally:
        coalescer.close(timeout=1.0)


def test_async_length_mismatch_fails_requests():
    coalescer = BatchCoalescer(window=0.01)
    solver = ManualSolver()
    try:
        request = coalescer.submit("k", solver, ["a", "b"])
        solver.wait_called(1)
        solver.calls[0][1].set_result([1.0])  # 1 damage for 2 faults
        with pytest.raises(ReproError, match="returned 1 damages"):
            request.result(timeout=5.0)
    finally:
        coalescer.close(timeout=1.0)


def test_close_resolves_parked_async_batches():
    coalescer = BatchCoalescer(window=60.0)
    solver = ManualSolver()
    request = coalescer.submit("k", solver, ["a"])
    closer = threading.Thread(
        target=coalescer.close, kwargs={"timeout": 5.0}
    )
    closer.start()
    solver.wait_called(1)
    solver.calls[0][1].set_result([2.0])
    closer.join(timeout=5.0)
    assert not closer.is_alive()
    assert request.result(timeout=1.0) == [2.0]
