"""The asyncio HTTP front-end over the sharded worker pool.

The headline acceptance test lives here: ~1k concurrent ``/damage``
requests across four networks, answered by worker processes through the
coalescer, must be bit-identical to direct in-process
:class:`GraphDamageAnalysis`.  Also: wire-protocol parity with the
threaded front-end (routes, errors, trace headers) and the pool section
of ``/healthz``.
"""

import random
import tempfile
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis import GraphDamageAnalysis
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.service import (
    AnalysisService,
    AsyncServerThread,
    ServiceClient,
    ServiceClientError,
)
from repro.spec import spec_for_network

DESIGN_NAMES = (
    "TreeFlat",
    "TreeUnbalanced",
    "TreeBalanced",
    "TreeFlat_Ex",
)
N_REQUESTS = 1000
N_CLIENTS = 64


@pytest.fixture(scope="module")
def stack():
    tmp = tempfile.TemporaryDirectory(prefix="repro-aserver-test-")
    service = AnalysisService(
        cache_dir=tmp.name,
        workers=2,
        shard_workers=2,
        shards=8,
        batch_window=0.01,
        tracing=True,
    )
    server = AsyncServerThread(service, host="127.0.0.1", port=0)
    designs = {}
    client = ServiceClient(server.url, timeout=120.0)
    for name in DESIGN_NAMES:
        network = build_design(name)
        spec = spec_for_network(network, seed=0)
        faults = list(iter_all_faults(network))
        direct = GraphDamageAnalysis(
            network, spec, backend="bitset"
        ).damage_vector(faults)
        fingerprint = client.upload_network(design=name)["fingerprint"]
        designs[name] = {
            "fingerprint": fingerprint,
            "faults": faults,
            "direct": [float(d) for d in direct],
        }
    yield {"service": service, "server": server, "designs": designs}
    server.stop()
    service.close(drain=False)
    tmp.cleanup()


class TestConcurrentDamageParity:
    def test_1k_concurrent_requests_bit_identical(self, stack):
        designs = stack["designs"]
        url = stack["server"].url
        names = list(designs)
        rng = random.Random(7)

        # Each request takes a random slice of a random design's fault
        # list, so coalesced batches mix lane sets and networks.
        plan = []
        for _ in range(N_REQUESTS):
            name = rng.choice(names)
            faults = designs[name]["faults"]
            lo = rng.randrange(len(faults))
            hi = rng.randrange(lo + 1, len(faults) + 1)
            plan.append((name, lo, hi))

        def one(task):
            name, lo, hi = task
            entry = designs[name]
            client = ServiceClient(url, timeout=120.0)
            got = client.damage(
                entry["fingerprint"],
                entry["faults"][lo:hi],
                seed=0,
            )
            return got == entry["direct"][lo:hi]

        with ThreadPoolExecutor(max_workers=N_CLIENTS) as executor:
            outcomes = list(executor.map(one, plan))
        assert all(outcomes), (
            f"{outcomes.count(False)}/{N_REQUESTS} requests diverged "
            "from direct GraphDamageAnalysis"
        )

    def test_batches_actually_coalesced(self, stack):
        # After the load above, the occupancy histogram must show
        # multi-request batches — otherwise the test exercised nothing.
        text = ServiceClient(stack["server"].url).metrics()
        assert "repro_batch_occupancy" in text
        assert "repro_shard_queue_depth" in text


class TestWireProtocol:
    def test_healthz_reports_pool_topology(self, stack):
        body = ServiceClient(stack["server"].url).healthz()
        assert body["status"] in ("ok", "degraded")
        pool = body["pool"]
        assert pool["n_shards"] == 8
        assert len(pool["shards"]) == 8
        for state in pool["workers"].values():
            assert state["alive"]

    def test_version_and_networks(self, stack):
        client = ServiceClient(stack["server"].url)
        assert "version" in client.version()
        listed = {n["fingerprint"] for n in client.networks()}
        expected = {
            entry["fingerprint"]
            for entry in stack["designs"].values()
        }
        assert expected <= listed

    def test_unknown_route_is_404(self, stack):
        client = ServiceClient(stack["server"].url)
        with pytest.raises(ServiceClientError) as info:
            client._request("GET", "/no-such-route")
        assert info.value.status == 404

    def test_bad_json_is_400(self, stack):
        client = ServiceClient(stack["server"].url)
        with pytest.raises(ServiceClientError) as info:
            client.damage("not-a-fingerprint", [], seed=0)
        assert info.value.status in (400, 404)

    def test_trace_id_round_trips(self, stack):
        designs = stack["designs"]
        entry = next(iter(designs.values()))
        client = ServiceClient(stack["server"].url, timeout=120.0)
        client.damage(
            entry["fingerprint"],
            entry["faults"][:3],
            seed=0,
            trace_id="aserver-test-trace",
        )
        assert client.last_trace_id == "aserver-test-trace"
        trace = client.trace("aserver-test-trace")
        spans = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert spans, "no spans recorded for the trace"
        # The tree must survive both the run_in_executor hop and the
        # worker-process boundary, not just record the HTTP root.
        names = {e["name"] for e in spans}
        assert {
            "http.request",
            "service.damage",
            "coalescer.dispatch",
            "worker.damage",
        } <= names, f"trace lost spans across a boundary: {sorted(names)}"
        span_ids = {e["args"]["span_id"] for e in spans}
        orphans = [
            e["name"]
            for e in spans
            if e["args"].get("parent_id")
            and e["args"]["parent_id"] not in span_ids
        ]
        assert not orphans, f"orphan spans: {orphans}"
        worker_pids = {
            e["pid"] for e in spans if e["name"] == "worker.damage"
        }
        front_pids = {
            e["pid"] for e in spans if e["name"] == "http.request"
        }
        assert worker_pids and not (worker_pids & front_pids), (
            "worker.damage should be recorded from a worker process"
        )

    def test_analyze_job_through_pool(self, stack):
        designs = stack["designs"]
        entry = designs["TreeFlat"]
        client = ServiceClient(stack["server"].url, timeout=120.0)
        record = client.analyze(
            entry["fingerprint"],
            method="graph",
            backend="bitset",
            timeout=120.0,
        )
        direct = GraphDamageAnalysis(
            build_design("TreeFlat"),
            spec_for_network(build_design("TreeFlat"), seed=0),
            backend="bitset",
        ).report()
        assert record["result"]["report"]["total"] == direct.total
