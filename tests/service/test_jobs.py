"""Job queue: lifecycle, timeout, retries with backoff, cancel, drain."""

import threading
import time

import pytest

from repro.errors import ReproError
from repro.service.jobs import JobQueue, JobStatus, TransientJobError


@pytest.fixture
def queue():
    q = JobQueue(workers=2, retry_backoff=0.01)
    yield q
    q.shutdown(drain=False, timeout=5.0)


def test_submit_runs_and_returns_result(queue):
    job = queue.submit(lambda job: {"answer": 42}, kind="demo")
    assert job.wait(5.0)
    assert job.status == JobStatus.SUCCEEDED
    assert job.result == {"answer": 42}
    assert job.attempts == 1
    assert job.error is None
    assert queue.get(job.id) is job


def test_as_dict_hides_result_until_done(queue):
    gate = threading.Event()

    def work(job):
        gate.wait(5.0)
        return "done"

    job = queue.submit(work)
    assert job.as_dict()["result"] is None
    gate.set()
    job.wait(5.0)
    record = job.as_dict()
    assert record["status"] == "succeeded"
    assert record["result"] == "done"
    assert record["runtime_seconds"] is not None


def test_failure_captures_error(queue):
    def boom(job):
        raise ValueError("broken input")

    job = queue.submit(boom)
    job.wait(5.0)
    assert job.status == JobStatus.FAILED
    assert "ValueError" in job.error
    assert "broken input" in job.error


def test_transient_errors_retried_with_backoff(queue):
    attempts = []

    def flaky(job):
        attempts.append(time.monotonic())
        if len(attempts) < 3:
            raise TransientJobError("worker pool hiccup")
        return "recovered"

    job = queue.submit(flaky, max_retries=3)
    job.wait(10.0)
    assert job.status == JobStatus.SUCCEEDED
    assert job.result == "recovered"
    assert job.attempts == 3
    # Backoff grows: second gap at least as long as the base backoff.
    assert attempts[2] - attempts[1] >= 0.01


def test_transient_errors_exhaust_bounded_retries(queue):
    calls = []

    def always_flaky(job):
        calls.append(1)
        raise TransientJobError("still down")

    job = queue.submit(always_flaky, max_retries=2)
    job.wait(10.0)
    assert job.status == JobStatus.FAILED
    assert len(calls) == 3  # 1 initial + 2 retries
    assert "TransientJobError" in job.error


def test_non_transient_error_not_retried(queue):
    calls = []

    def fatal(job):
        calls.append(1)
        raise RuntimeError("logic bug")

    job = queue.submit(fatal, max_retries=5)
    job.wait(5.0)
    assert job.status == JobStatus.FAILED
    assert len(calls) == 1


def test_timeout_fails_job(queue):
    job = queue.submit(
        lambda job: time.sleep(30), kind="slow", timeout=0.15
    )
    job.wait(5.0)
    assert job.status == JobStatus.FAILED
    assert "timeout" in job.error


def test_cancel_queued_job():
    queue = JobQueue(workers=1)
    gate = threading.Event()
    try:
        blocker = queue.submit(lambda job: gate.wait(10.0), kind="blocker")
        queued = queue.submit(lambda job: "never", kind="victim")
        cancelled = queue.cancel(queued.id)
        assert cancelled.status == JobStatus.CANCELLED
        gate.set()
        blocker.wait(5.0)
        queued.wait(5.0)
        assert queued.status == JobStatus.CANCELLED
        assert queued.result is None
    finally:
        gate.set()
        queue.shutdown(drain=False, timeout=5.0)


def test_cancel_running_job_cooperatively(queue):
    started = threading.Event()

    def cooperative(job):
        started.set()
        while not job.cancelled():
            time.sleep(0.01)
        return "stopped"

    job = queue.submit(cooperative)
    assert started.wait(5.0)
    queue.cancel(job.id)
    job.wait(5.0)
    assert job.status == JobStatus.CANCELLED


def test_unknown_job_raises(queue):
    with pytest.raises(ReproError):
        queue.get("nope")
    with pytest.raises(ReproError):
        queue.cancel("nope")


def test_counts_and_depth(queue):
    gate = threading.Event()
    jobs = [
        queue.submit(lambda job: gate.wait(10.0)) for _ in range(4)
    ]
    time.sleep(0.1)
    counts = queue.counts()
    assert counts["running"] == 2  # two workers busy
    assert counts["queued"] == 2
    assert queue.depth() == 2
    gate.set()
    for job in jobs:
        job.wait(5.0)
    assert queue.counts()["succeeded"] == 4


def test_shutdown_drains_backlog():
    queue = JobQueue(workers=1)
    done = []
    jobs = [
        queue.submit(lambda job, i=i: done.append(i) or i)
        for i in range(5)
    ]
    queue.shutdown(drain=True, timeout=10.0)
    assert sorted(done) == [0, 1, 2, 3, 4]
    assert all(job.status == JobStatus.SUCCEEDED for job in jobs)
    with pytest.raises(ReproError):
        queue.submit(lambda job: None)


def test_shutdown_without_drain_cancels_backlog():
    queue = JobQueue(workers=1)
    started = threading.Event()
    gate = threading.Event()

    def block(job):
        started.set()
        return gate.wait(10.0)

    blocker = queue.submit(block)
    assert started.wait(5.0)  # blocker is running, not merely queued
    backlog = [queue.submit(lambda job: "never") for _ in range(3)]
    gate.set()
    queue.shutdown(drain=False, timeout=10.0)
    blocker.wait(5.0)
    assert blocker.status == JobStatus.SUCCEEDED
    assert all(job.status == JobStatus.CANCELLED for job in backlog)


def test_events_emitted(queue=None):
    events = []
    queue = JobQueue(
        workers=1,
        retry_backoff=0.0,
        on_event=lambda job, event: events.append((job.kind, event)),
    )
    try:
        calls = []

        def flaky(job):
            calls.append(1)
            if len(calls) < 2:
                raise TransientJobError("once")
            return "ok"

        job = queue.submit(flaky, kind="demo", max_retries=1)
        job.wait(5.0)
        assert ("demo", "submitted") in events
        assert ("demo", "started") in events
        assert ("demo", "retried") in events
        assert ("demo", "succeeded") in events
    finally:
        queue.shutdown(drain=False, timeout=5.0)
