"""Retry and timeout behaviour of :class:`ServiceClient`.

GETs retry on connection-level failures with bounded exponential
backoff; POST/DELETE never retry; HTTP error statuses are answers, not
failures; and every verb threads its per-call ``timeout`` through to
the transport.
"""

import socket
import threading

import pytest

from repro.service import ServiceClient, ServiceClientError


def make_flaky(client, failures, cause_factory=ConnectionRefusedError):
    """Replace the transport with one that fails ``failures`` times."""
    calls = []

    def fake(method, path, payload=None, timeout=None, trace_id=None):
        calls.append({"method": method, "path": path, "timeout": timeout})
        if len(calls) <= failures:
            error = ServiceClientError("transport down")
            error.__cause__ = cause_factory()
            raise error
        return {"status": "ok"}

    client._request_once = fake
    return calls


class TestRetryPolicy:
    def test_get_retries_until_success(self):
        client = ServiceClient("http://x", retries=3, backoff=0.001)
        calls = make_flaky(client, failures=2)
        assert client.healthz() == {"status": "ok"}
        assert len(calls) == 3

    def test_get_gives_up_after_budget(self):
        client = ServiceClient("http://x", retries=2, backoff=0.001)
        calls = make_flaky(client, failures=10)
        with pytest.raises(ServiceClientError):
            client.healthz()
        assert len(calls) == 3  # 1 attempt + 2 retries

    def test_post_never_retries(self):
        client = ServiceClient("http://x", retries=5, backoff=0.001)
        calls = make_flaky(client, failures=10)
        with pytest.raises(ServiceClientError):
            client.submit(kind="analyze", fingerprint="f")
        assert len(calls) == 1

    def test_delete_never_retries(self):
        client = ServiceClient("http://x", retries=5, backoff=0.001)
        calls = make_flaky(client, failures=10)
        with pytest.raises(ServiceClientError):
            client.cancel("job-1")
        assert len(calls) == 1

    def test_http_status_errors_are_not_retried(self):
        # An HTTP error response reaches the client as a
        # ServiceClientError with *no* connection-level cause: it is the
        # server's answer and must surface immediately.
        client = ServiceClient("http://x", retries=5, backoff=0.001)
        calls = []

        def fake(method, path, payload=None, timeout=None, trace_id=None):
            calls.append(method)
            raise ServiceClientError("GET /x failed with HTTP 404",
                                     status=404) from None

        client._request_once = fake
        with pytest.raises(ServiceClientError):
            client.healthz()
        assert len(calls) == 1

    def test_backoff_is_exponential_and_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", sleeps.append
        )
        client = ServiceClient(
            "http://x", retries=4, backoff=0.05, backoff_max=0.12
        )
        make_flaky(client, failures=10)
        with pytest.raises(ServiceClientError):
            client.healthz()
        assert sleeps == [0.05, 0.1, 0.12, 0.12]


class TestRealSocketRecovery:
    def test_get_survives_a_reset_connection(self):
        # First accept: close without answering (RemoteDisconnected /
        # ECONNRESET at the client).  Second accept: answer properly.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(4)
        port = listener.getsockname()[1]

        def serve():
            conn, _ = listener.accept()
            conn.close()
            conn, _ = listener.accept()
            conn.recv(65536)
            body = b'{"status": "ok"}'
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout=10.0,
                retries=3,
                backoff=0.01,
            )
            assert client.healthz() == {"status": "ok"}
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_refused_connection_exhausts_retries(self):
        # Bind-then-close guarantees a port nobody is listening on.
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        client = ServiceClient(
            f"http://127.0.0.1:{port}", retries=2, backoff=0.01
        )
        with pytest.raises(ServiceClientError, match="cannot reach"):
            client.healthz()


class TestTimeoutThreading:
    @pytest.mark.parametrize(
        "call",
        [
            lambda c: c.healthz(timeout=1.5),
            lambda c: c.version(timeout=1.5),
            lambda c: c.metrics(timeout=1.5),
            lambda c: c.networks(timeout=1.5),
            lambda c: c.jobs(timeout=1.5),
            lambda c: c.job("j1", timeout=1.5),
            lambda c: c.cancel("j1", timeout=1.5),
            lambda c: c.trace("t1", timeout=1.5),
            lambda c: c.upload_network(design="TreeFlat", timeout=1.5),
            lambda c: c.submit(kind="analyze", timeout=1.5),
            lambda c: c.damage("fp", [], seed=0, timeout=1.5),
        ],
        ids=[
            "healthz", "version", "metrics", "networks", "jobs", "job",
            "cancel", "trace", "upload_network", "submit", "damage",
        ],
    )
    def test_every_verb_threads_timeout(self, call):
        client = ServiceClient("http://x")
        seen = {}

        def fake(method, path, payload=None, timeout=None, trace_id=None):
            seen["timeout"] = timeout
            return {
                "status": "ok", "networks": [], "jobs": [],
                "damages": [], "version": "0",
            }

        client._request_once = fake
        call(client)
        assert seen["timeout"] == 1.5

    def test_job_timeout_lands_in_payload_not_transport(self):
        client = ServiceClient("http://x")
        seen = {}

        def fake(method, path, payload=None, timeout=None, trace_id=None):
            seen.update({"payload": payload, "timeout": timeout})
            return {"id": "j1"}

        client._request_once = fake
        client.submit(kind="analyze", timeout=2.0, job_timeout=30.0)
        assert seen["timeout"] == 2.0
        assert seen["payload"]["timeout"] == 30.0
