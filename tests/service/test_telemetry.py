"""End-to-end telemetry acceptance over a sharded service.

Covers the ISSUE acceptance criteria: under load ``/metrics/history``
returns >= 2 samples of ``repro_shard_queue_depth``; a traced ``/damage``
shows up in ``/logs?trace_id=`` including records shipped home from the
shard worker's pid; ``POST /profile`` against a shard fingerprint runs
inside the worker and names a ``batch.py`` frame; campaign job status
carries RSS/CPU resource deltas; and ``/metrics`` stays scrapeable
concurrently with a running campaign job.
"""

import threading
import time

import pytest

from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.obs.trace import current_context, enable_tracing, root_span
from repro.service import AnalysisService, ServiceClient, make_server


@pytest.fixture(scope="module")
def service():
    enable_tracing()
    svc = AnalysisService(
        no_cache=True,
        workers=1,
        shard_workers=2,
        batch_window=0.02,
        history_interval=0.05,
        history_window=200,
        tracing=True,
    )
    yield svc
    svc.close(drain=False, timeout=10.0)


@pytest.fixture(scope="module")
def client(service):
    server = make_server(service, port=0)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.05},
        daemon=True,
    )
    thread.start()
    host, port = server.server_address[:2]
    yield ServiceClient(f"http://{host}:{port}", timeout=120.0)
    server.shutdown()
    thread.join(timeout=10.0)
    server.server_close()


@pytest.fixture(scope="module")
def fingerprint(client):
    return client.upload_network(design="TreeFlat")["fingerprint"]


@pytest.fixture(scope="module")
def faults():
    return list(iter_all_faults(build_design("TreeFlat")))[:16]


@pytest.fixture
def load(client, fingerprint, faults):
    """Background /damage traffic for the duration of a test."""
    stop = threading.Event()

    def hammer():
        while not stop.is_set():
            client.damage(fingerprint, faults)

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    yield
    stop.set()
    thread.join(timeout=30.0)


def test_traced_damage_appears_in_logs(client, fingerprint, faults):
    with root_span("telemetry.test"):
        trace_id = current_context().trace_id
        damages = client.damage(fingerprint, faults)
    assert len(damages) == len(faults)
    deadline = time.monotonic() + 10.0
    records = []
    while time.monotonic() < deadline:
        payload = client.logs(trace_id=trace_id)
        records = payload["records"]
        if any(r["logger"] == "worker" for r in records):
            break
        time.sleep(0.05)
    assert records, "no log records for the traced request"
    assert all(r["trace_id"] == trace_id for r in records)
    # the front-end request log line is correlated ...
    assert any(r["message"] == "request" for r in records)
    # ... and so are records shipped home from the shard worker's pid
    worker_records = [r for r in records if r["logger"] == "worker"]
    assert worker_records
    assert any(r["pid"] != records[0]["pid"] for r in worker_records) or (
        worker_records[0]["pid"] != 0
    )
    assert "dropped" in payload and "retained" in payload


def test_logs_level_filter(client, fingerprint, faults):
    client.damage(fingerprint, faults)
    debug_and_up = client.logs(level="debug")["records"]
    errors_only = client.logs(level="error")["records"]
    assert len(debug_and_up) >= len(errors_only)
    assert all(r["level"] >= 40 for r in errors_only)


def test_history_collects_shard_queue_depth_under_load(client, load):
    deadline = time.monotonic() + 20.0
    series = []
    while time.monotonic() < deadline:
        payload = client.metrics_history(name="repro_shard_queue_depth")
        series = [
            s for s in payload["series"] if len(s["points"]) >= 2
        ]
        if series:
            break
        time.sleep(0.1)
    assert series, "no repro_shard_queue_depth series with >= 2 samples"
    assert payload["samples"] >= 2
    assert payload["running"] is True


def test_history_exposes_process_resource_series(client):
    names = {s["name"] for s in client.metrics_history()["series"]}
    assert "repro_process_rss_bytes" in names
    assert "repro_process_cpu_seconds_total" in names
    assert "repro_lane_bytes_total" in names


def test_history_points_cap(client):
    payload = client.metrics_history(points=1)
    assert payload["series"]
    assert all(len(s["points"]) <= 1 for s in payload["series"])


def test_profile_runs_inside_shard_worker(client, fingerprint, load):
    profile = client.profile(seconds=0.6, fingerprint=fingerprint)
    assert profile["target"] == "worker"
    assert profile["samples"] > 0
    assert profile["folded"]
    batch_stacks = [s for s in profile["folded"] if "batch.py" in s]
    assert batch_stacks, sorted(profile["folded"])[:5]
    assert "frame" in profile["top"]


def test_profile_defaults_to_frontend_process(client):
    profile = client.profile(seconds=0.2)
    assert profile["target"] == "service"
    assert profile["samples"] > 0
    assert profile["pid"] != 0


def test_profile_rejects_bad_parameters(client):
    from repro.service.client import ServiceClientError

    with pytest.raises(ServiceClientError):
        client.profile(seconds=-1.0)
    with pytest.raises(ServiceClientError):
        client.profile(seconds=0.1, interval=0.0)


def test_dashboard_is_self_contained_html(client):
    html = client.dashboard()
    assert "<!doctype html" in html.lower()
    assert "/metrics/history" in html
    assert "/logs" in html
    # self-contained: no external scripts, styles or CDNs
    lowered = html.lower()
    assert "src=\"http" not in lowered
    assert "href=\"http" not in lowered
    assert "cdn." not in lowered


def test_campaign_job_status_reports_resources(client, fingerprint):
    job = client.submit(
        kind="campaign",
        fingerprint=fingerprint,
        campaign={"kind": "kfault", "k": 1},
    )
    # /metrics stays scrapeable while the campaign runs
    scrapes = 0
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        text = client.metrics()
        assert "repro_jobs_total" in text
        scrapes += 1
        status = client.job(job["id"])
        if status["status"] in ("succeeded", "failed"):
            break
        time.sleep(0.05)
    assert scrapes >= 2
    assert status["status"] == "succeeded", status
    resources = status.get("resources")
    assert resources, status
    assert resources["cpu_seconds"] >= 0.0
    assert "rss_delta_bytes" in resources
    assert resources["wall_seconds"] > 0.0
    assert "lane_mb" in resources
    # the campaign result itself carries the block-level merge
    result_resources = status["result"].get("resources")
    assert result_resources and "cpu_seconds" in result_resources


def test_job_resource_metrics_accumulate(client, fingerprint):
    text = client.metrics()
    assert "repro_job_cpu_seconds_total" in text
    assert "repro_job_lane_mb_total" in text
