"""Sharded worker-process pool (`repro.service.workers`).

Shard-map determinism and rebalance locality, damage/analyze parity of
the cross-process path against direct in-process evaluation (the
bit-identical acceptance criterion), and worker-crash recovery: requeue
of in-flight work, restart in place, and removal from the ring once
restarts are exhausted.
"""

import time

import pytest

from repro.analysis import GraphDamageAnalysis
from repro.analysis.faults import iter_all_faults
from repro.bench import build_design
from repro.errors import ReproError
from repro.ir import intern
from repro.service.workers import (
    PoolClosedError,
    ShardMap,
    WorkerPool,
)
from repro.spec import spec_for_network

DESIGN_NAMES = ("TreeFlat", "TreeUnbalanced")


class TestShardMap:
    def test_shard_of_is_stable(self):
        a = ShardMap(shards=16)
        b = ShardMap(shards=16)
        for key in ("abc", "def", "0123", "f" * 64):
            assert a.shard_of(key) == b.shard_of(key)
            assert 0 <= a.shard_of(key) < 16

    def test_every_shard_has_an_owner(self):
        shard_map = ShardMap(shards=32)
        for worker_id in range(4):
            shard_map.add_worker(worker_id)
        assignment = shard_map.assignment()
        assert set(assignment) == set(range(32))
        assert set(assignment.values()) <= {0, 1, 2, 3}

    def test_removal_moves_only_the_dead_workers_shards(self):
        shard_map = ShardMap(shards=64)
        for worker_id in range(4):
            shard_map.add_worker(worker_id)
        before = shard_map.assignment()
        shard_map.remove_worker(2)
        after = shard_map.assignment()
        for shard, owner in before.items():
            if owner != 2:
                assert after[shard] == owner, (
                    f"shard {shard} moved although its owner survived"
                )
            else:
                assert after[shard] != 2
        assert 2 not in shard_map.workers()

    def test_no_workers_raises(self):
        shard_map = ShardMap(shards=4)
        with pytest.raises(PoolClosedError):
            shard_map.worker_of(0)

    def test_invalid_shard_count(self):
        with pytest.raises(ReproError):
            ShardMap(shards=0)


@pytest.fixture(scope="module")
def designs():
    out = {}
    for name in DESIGN_NAMES:
        network = build_design(name)
        spec = spec_for_network(network, seed=0)
        faults = list(iter_all_faults(network))
        direct = GraphDamageAnalysis(
            network, spec, backend="bitset"
        ).damage_vector(faults)
        out[name] = {
            "ir": intern(network),
            "spec": spec,
            "faults": faults,
            "direct": [float(d) for d in direct],
        }
    return out


@pytest.fixture(scope="module")
def pool(designs):
    pool = WorkerPool(workers=2, shards=8)
    for entry in designs.values():
        pool.register_network(entry["ir"], spec=entry["spec"], seed=0)
    yield pool
    pool.close()


class TestPoolParity:
    def test_damage_bit_identical_across_networks(self, pool, designs):
        futures = {
            name: pool.damage(
                entry["ir"].fingerprint, entry["faults"], seed=0
            )
            for name, entry in designs.items()
        }
        for name, future in futures.items():
            assert future.result(timeout=60.0) == designs[name]["direct"], (
                f"cross-process damage diverged on {name}"
            )

    def test_analyze_matches_direct_report(self, pool, designs):
        entry = designs["TreeFlat"]
        payload = pool.analyze(
            entry["ir"].fingerprint,
            seed=0,
            params={"method": "graph", "backend": "bitset",
                    "cache_dir": None},
        ).result(timeout=60.0)
        direct = GraphDamageAnalysis(
            build_design("TreeFlat"), entry["spec"], backend="bitset"
        ).report()
        assert payload["report"]["total"] == direct.total
        assert (
            payload["report"]["primitive_damage"]
            == direct.primitive_damage
        )

    def test_unregistered_fingerprint_raises(self, pool):
        with pytest.raises(ReproError):
            pool.damage("f" * 64, [], seed=0)

    def test_ping_round_trip(self, pool):
        for worker_id in pool.map.workers():
            info = pool.ping(worker_id).result(timeout=30.0)
            assert info["pid"] is not None

    def test_describe_reports_topology(self, pool):
        described = pool.describe()
        assert described["n_shards"] == 8
        assert len(described["shards"]) == 8
        for state in described["workers"].values():
            assert state["alive"]

    def test_worker_error_propagates(self, pool, designs):
        entry = designs["TreeFlat"]
        future = pool.analyze(
            entry["ir"].fingerprint,
            seed=0,
            params={"method": "no-such-method", "cache_dir": None},
        )
        with pytest.raises(ReproError):
            future.result(timeout=60.0)


class TestPickleTransport:
    def test_parity_without_shared_memory(self, designs):
        pool = WorkerPool(workers=1, shards=2, prefer_shm=False)
        try:
            entry = designs["TreeFlat"]
            pool.register_network(entry["ir"], spec=entry["spec"], seed=0)
            result = pool.damage(
                entry["ir"].fingerprint, entry["faults"], seed=0
            ).result(timeout=60.0)
            assert result == entry["direct"]
            assert pool.describe()["transport"] == "pickle"
        finally:
            pool.close()


class TestCrashRecovery:
    def _wait_for(self, predicate, timeout=15.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.05)
        return False

    def test_restart_in_place_and_requeue(self, designs):
        events = []
        pool = WorkerPool(
            workers=2,
            shards=8,
            monitor_interval=0.05,
            on_worker_event=lambda wid, event: events.append((wid, event)),
        )
        try:
            for entry in designs.values():
                pool.register_network(
                    entry["ir"], spec=entry["spec"], seed=0
                )
            entry = designs["TreeFlat"]
            victim = pool.map.worker_of(
                pool.map.shard_of(entry["ir"].fingerprint)
            )
            # A request in flight (or queued) when its worker dies must
            # still resolve, bit-identically, via requeue + restart.
            future = pool.damage(
                entry["ir"].fingerprint, entry["faults"], seed=0
            )
            pool.kill_worker(victim)
            assert future.result(timeout=60.0) == entry["direct"]
            assert self._wait_for(
                lambda: (victim, "restarted") in events
            ), f"no restart event, saw {events}"
            # The restarted worker serves its shards again.
            after = pool.damage(
                entry["ir"].fingerprint, entry["faults"], seed=0
            )
            assert after.result(timeout=60.0) == entry["direct"]
            state = pool.describe()["workers"][str(victim)]
            assert state["restarts"] == 1
        finally:
            pool.close()

    def test_exhausted_restarts_rebalance_shards(self, designs):
        events = []
        pool = WorkerPool(
            workers=2,
            shards=8,
            max_restarts=0,
            monitor_interval=0.05,
            on_worker_event=lambda wid, event: events.append((wid, event)),
        )
        try:
            for entry in designs.values():
                pool.register_network(
                    entry["ir"], spec=entry["spec"], seed=0
                )
            entry = designs["TreeUnbalanced"]
            victim = pool.map.worker_of(
                pool.map.shard_of(entry["ir"].fingerprint)
            )
            survivor = next(
                w for w in pool.map.workers() if w != victim
            )
            pool.kill_worker(victim)
            assert self._wait_for(
                lambda: (victim, "removed") in events
            ), f"worker never removed, saw {events}"
            # Every shard — including the dead worker's — now routes to
            # the survivor, and requests still come back bit-identical.
            assert set(pool.map.assignment().values()) == {survivor}
            result = pool.damage(
                entry["ir"].fingerprint, entry["faults"], seed=0
            ).result(timeout=60.0)
            assert result == entry["direct"]
        finally:
            pool.close()

    def test_closed_pool_rejects_submissions(self, designs):
        pool = WorkerPool(workers=1, shards=2)
        entry = designs["TreeFlat"]
        pool.register_network(entry["ir"], spec=entry["spec"], seed=0)
        pool.close()
        with pytest.raises(PoolClosedError):
            pool.damage(entry["ir"].fingerprint, entry["faults"], seed=0)
