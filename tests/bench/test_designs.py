"""Unit tests for the Table-I design registry."""

import pytest

from repro.bench import DESIGNS, build_design, design_names, get_design
from repro.errors import BenchmarkError


class TestRegistry:
    def test_all_24_designs_present(self):
        assert len(DESIGNS) == 24

    def test_paper_counts_recorded(self):
        info = DESIGNS["p93791"]
        assert info.n_segments == 1241
        assert info.n_muxes == 653
        assert info.paper.generations == 3500
        assert info.paper.max_damage == 293771
        assert info.paper.runtime == "06:10"

    def test_families_known(self):
        families = {info.family for info in DESIGNS.values()}
        assert families == {
            "tree_flat",
            "tree_balanced",
            "tree_unbalanced",
            "soc",
            "mbist",
        }

    def test_get_design_unknown_rejected(self):
        with pytest.raises(BenchmarkError):
            get_design("nonexistent")

    def test_design_names_order(self):
        names = design_names()
        assert names[0] == "TreeFlat"
        assert "MBIST_5_100_100" in names


@pytest.mark.parametrize(
    "name",
    [
        "TreeFlat",
        "TreeUnbalanced",
        "TreeBalanced",
        "TreeFlat_Ex",
        "q12710",
        "a586710",
        "p34392",
        "t512505",
        "p22810",
        "MBIST_1_5_5",
        "MBIST_2_5_5",
    ],
)
def test_generated_designs_are_count_exact(name):
    info = get_design(name)
    network = build_design(name)
    assert network.counts() == (info.n_segments, info.n_muxes)
    network.validate()


def test_generation_is_deterministic():
    first = get_design("TreeBalanced").generate()
    second = get_design("TreeBalanced").generate()
    assert first == second


def test_every_design_declares_positive_paper_values():
    for info in DESIGNS.values():
        assert info.paper.max_cost > 0
        assert info.paper.max_damage > 0
        assert info.paper.generations > 0
        assert info.n_segments >= info.n_muxes >= 1
