"""Unit tests for the Table-I harness and report formatting."""

import json

import pytest

from repro.bench import (
    format_comparison,
    format_row,
    format_seconds,
    format_table,
    run_design,
    run_table,
)


@pytest.fixture(scope="module")
def tree_flat_row():
    return run_design(
        "TreeFlat", generations=60, population_size=40, seed=0
    )


class TestRunDesign:
    def test_row_fields(self, tree_flat_row):
        row = tree_flat_row
        assert row.name == "TreeFlat"
        assert row.n_segments == 24
        assert row.n_muxes == 24
        assert row.max_cost > 0
        assert row.max_damage > 0
        assert row.generations == 60
        assert row.runtime_seconds > 0
        assert row.front_size > 0

    def test_min_cost_solution_meets_cap(self, tree_flat_row):
        row = tree_flat_row
        if row.min_cost_damage is not None:
            assert row.min_cost_damage <= 0.10 * row.max_damage + 1e-9

    def test_min_damage_solution_meets_cap(self, tree_flat_row):
        row = tree_flat_row
        assert row.min_damage_cost is not None
        assert row.min_damage_cost <= 0.10 * row.max_cost + 1e-9

    def test_greedy_reference_present(self, tree_flat_row):
        assert tree_flat_row.greedy_min_cost_cost is not None
        assert tree_flat_row.greedy_min_damage_damage is not None

    def test_as_dict_roundtrips_through_json(self, tree_flat_row):
        data = json.loads(json.dumps(tree_flat_row.as_dict()))
        assert data["design"] == "TreeFlat"
        assert data["paper"]["max_damage"] == 502

    def test_scale_generations(self):
        row = run_design(
            "TreeFlat",
            scale_generations=0.1,
            population_size=20,
            seed=0,
            with_greedy=False,
        )
        assert row.generations == 30  # ceil(300 * 0.1)


class TestRunTable:
    def test_subset(self):
        rows = run_table(
            names=["TreeFlat", "q12710"],
            generations=20,
            population_size=16,
            with_greedy=False,
        )
        assert [row.name for row in rows] == ["TreeFlat", "q12710"]


class TestFormatting:
    def test_format_seconds(self):
        assert format_seconds(0) == "00:00"
        assert format_seconds(61) == "01:01"
        assert format_seconds(3601) == "60:01"

    def test_format_row_contains_key_numbers(self, tree_flat_row):
        text = format_row(tree_flat_row)
        assert "TreeFlat" in text
        assert "24" in text

    def test_format_table_has_header(self, tree_flat_row):
        text = format_table([tree_flat_row])
        assert "MaxDamage" in text
        assert "TreeFlat" in text

    def test_format_comparison(self, tree_flat_row):
        text = format_comparison([tree_flat_row])
        assert "TreeFlat" in text
        assert "%" in text

    def test_none_solutions_render_as_dash(self, tree_flat_row):
        saved_cost = tree_flat_row.min_cost_cost
        tree_flat_row.min_cost_cost = None
        try:
            assert " -" in format_row(tree_flat_row)
        finally:
            tree_flat_row.min_cost_cost = saved_cost
