"""Unit tests for the Table-I report formatting."""

import pytest

from repro.bench import format_comparison, format_row, format_seconds, format_table
from repro.bench.designs import get_design
from repro.bench.table1 import Table1Row


@pytest.fixture
def synthetic_row():
    row = Table1Row(get_design("TreeFlat"))
    row.max_cost = 1000.0
    row.max_damage = 50_000.0
    row.generations = 300
    row.min_cost_cost = 120.0
    row.min_cost_damage = 4_900.0
    row.min_damage_cost = 95.0
    row.min_damage_damage = 20_000.0
    row.runtime_seconds = 83.4
    row.front_size = 40
    return row


class TestFormatSeconds:
    def test_zero(self):
        assert format_seconds(0) == "00:00"

    def test_rounding(self):
        assert format_seconds(59.6) == "01:00"

    def test_hours_spill_into_minutes(self):
        assert format_seconds(3723) == "62:03"


class TestFormatRow:
    def test_numbers_thousand_separated(self, synthetic_row):
        text = format_row(synthetic_row)
        assert "50,000" in text
        assert "01:23" in text

    def test_missing_solution_dash(self, synthetic_row):
        synthetic_row.min_cost_cost = None
        synthetic_row.min_cost_damage = None
        text = format_row(synthetic_row)
        assert text.count(" -") >= 2


class TestFormatTable:
    def test_header_and_separator(self, synthetic_row):
        text = format_table([synthetic_row])
        lines = text.splitlines()
        assert lines[0].startswith("Design")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 3


class TestFormatComparison:
    def test_percentages_present(self, synthetic_row):
        text = format_comparison([synthetic_row])
        # ours: 120/1000 = 12.0%; paper TreeFlat: 7/350 = 2.0%
        assert "12.0%" in text
        assert "2.0%" in text

    def test_missing_measurement_dash(self, synthetic_row):
        synthetic_row.min_cost_cost = None
        text = format_comparison([synthetic_row])
        assert "-" in text.splitlines()[-1]
