"""Unit tests for the benchmark network generators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench import generators
from repro.errors import BenchmarkError
from repro.rsn.ast import elaborate
from repro.sp import decompose, is_series_parallel


class TestFig1Example:
    def test_structure(self):
        network = generators.fig1_example()
        assert network.counts() == (5, 3)
        assert set(network.instrument_names()) == {
            "i1", "i2", "i3", "i4", "i5",
        }

    def test_paper_facts_hold(self):
        from repro.analysis import mux_stuck_effect

        network = generators.fig1_example()
        tree = decompose(network)
        assert tree.parent_mux(tree.leaf("c2")).primitive == "m0"
        effect = mux_stuck_effect(tree, "m0", 1)
        unobs, _ = effect.lost_instruments(network)
        assert unobs == {"i1", "i2", "i3"}


class TestFlatChain:
    def test_exact_counts(self):
        decl = generators.flat_sib_chain(24, 24, seed=0)
        assert decl.counts() == (24, 24)
        elaborate(decl).validate()

    def test_uneven_share(self):
        decl = generators.flat_sib_chain(10, 3, seed=1)
        assert decl.counts() == (10, 3)

    def test_too_few_segments_rejected(self):
        with pytest.raises(BenchmarkError):
            generators.flat_sib_chain(2, 3)

    def test_deterministic(self):
        assert generators.flat_sib_chain(12, 4, seed=7) == (
            generators.flat_sib_chain(12, 4, seed=7)
        )


class TestBalancedTree:
    def test_exact_counts(self):
        decl = generators.balanced_sib_tree(90, 46, seed=0)
        assert decl.counts() == (90, 46)
        elaborate(decl).validate()

    def test_single_sib(self):
        decl = generators.balanced_sib_tree(5, 1, seed=0)
        assert decl.counts() == (5, 1)

    def test_tree_is_nested(self):
        decl = generators.balanced_sib_tree(20, 7, seed=0)
        # root SIB hosts other SIBs
        from repro.rsn.ast import SibDecl

        root = decl.items[0]
        assert isinstance(root, SibDecl)
        assert any(isinstance(child, SibDecl) for child in root.children)


class TestUnbalancedTree:
    def test_exact_counts(self):
        decl = generators.unbalanced_sib_tree(63, 28, seed=0)
        assert decl.counts() == (63, 28)
        elaborate(decl).validate()

    def test_maximal_nesting_depth(self):
        from repro.rsn.ast import SibDecl

        decl = generators.unbalanced_sib_tree(8, 8, seed=0)
        depth = 0
        items = decl.items
        while True:
            sibs = [item for item in items if isinstance(item, SibDecl)]
            if not sibs:
                break
            depth += 1
            items = sibs[0].children
        assert depth == 8


class TestSocNetwork:
    def test_exact_counts(self):
        decl = generators.soc_mux_network(47, 25, seed=0)
        assert decl.counts() == (47, 25)
        elaborate(decl).validate()

    def test_series_parallel(self):
        network = elaborate(generators.soc_mux_network(100, 40, seed=3))
        assert is_series_parallel(network)

    def test_nesting_parameter(self):
        from repro.rsn.ast import MuxDecl

        flat = generators.soc_mux_network(30, 10, seed=5, nesting=0.0)
        assert all(isinstance(item, MuxDecl) for item in flat.items)
        assert len(flat.items) == 10


class TestMbistNetwork:
    def test_exact_counts(self):
        decl = generators.mbist_network(113, 15, seed=0)
        assert decl.counts() == (113, 15)
        elaborate(decl).validate()

    def test_wide_registers(self):
        from repro.rsn.ast import SegmentDecl

        decl = generators.mbist_network(50, 5, seed=0)
        lengths = [
            item.length
            for item in decl.walk()
            if isinstance(item, SegmentDecl)
        ]
        assert min(lengths) >= 8  # MBIST registers are wide

    def test_skewed_shares(self):
        from repro.rsn.ast import SegmentDecl, SibDecl

        decl = generators.mbist_network(200, 10, seed=2)
        shares = []
        stack = [item for item in decl.items if isinstance(item, SibDecl)]
        while stack:
            sib = stack.pop()
            shares.append(
                sum(
                    1
                    for child in sib.children
                    if isinstance(child, SegmentDecl)
                )
            )
            stack.extend(
                child
                for child in sib.children
                if isinstance(child, SibDecl)
            )
        assert max(shares) > 2 * min(shares)

    def test_hierarchical_grouping(self):
        from repro.rsn.ast import SibDecl

        decl = generators.mbist_network(100, 9, seed=0)
        root = decl.items[0]
        assert isinstance(root, SibDecl)
        nested = [c for c in root.children if isinstance(c, SibDecl)]
        assert nested, "MBIST SIBs must nest hierarchically"


@settings(max_examples=30, deadline=None)
@given(
    n_units=st.integers(min_value=1, max_value=20),
    extra_segments=st.integers(min_value=0, max_value=40),
    seed=st.integers(min_value=0, max_value=500),
    family=st.sampled_from(
        ["flat_sib_chain", "balanced_sib_tree", "unbalanced_sib_tree",
         "mbist_network"]
    ),
)
def test_generators_hit_requested_counts(
    n_units, extra_segments, seed, family
):
    n_segments = n_units + extra_segments
    generator = getattr(generators, family)
    decl = generator(n_segments, n_units, seed=seed)
    assert decl.counts() == (n_segments, n_units)
    network = elaborate(decl)
    assert network.counts() == (n_segments, n_units)
    assert is_series_parallel(network)


@settings(max_examples=20, deadline=None)
@given(
    n_units=st.integers(min_value=1, max_value=15),
    extra=st.integers(min_value=0, max_value=30),
    seed=st.integers(min_value=0, max_value=300),
)
def test_soc_generator_hits_counts(n_units, extra, seed):
    decl = generators.soc_mux_network(n_units + extra, n_units, seed=seed)
    assert decl.counts() == (n_units + extra, n_units)
    network = elaborate(decl)
    assert is_series_parallel(network)
