"""The bench-regression gate: baseline parsing, comparison, exit codes.

Synthetic baselines over a tiny generated design keep the re-measure
step fast; regression/pass outcomes are forced through the recorded
baseline seconds (a near-zero baseline must regress, an enormous one
must pass) so the gate's verdict — not the machine's speed — is what
the assertions pin down.
"""

import json
from pathlib import Path

import pytest

from repro.bench.regression import (
    BenchComparison,
    HotPath,
    RegressionParseError,
    compare_baseline,
    load_hot_paths,
    measure_hot_path,
)
from repro.cli import main

#: Small enough that one serial 'fast' report is milliseconds.
TINY = {"n_segments": 24, "n_muxes": 3}


def _criticality_baseline(serial_seconds: float) -> dict:
    return {
        "benchmark": "criticality-engine",
        "designs": [
            {
                "design": "mbist_24_3",
                "method": "fast",
                "faults": 100,
                "serial": {"seconds": serial_seconds},
                **TINY,
            }
        ],
    }


def _batch_baseline(bitset_seconds: float) -> dict:
    return {
        "benchmark": "bitset-batch-analysis",
        "designs": [
            {
                "design": "mbist_24_3",
                "bitset_seconds": bitset_seconds,
                **TINY,
            }
        ],
    }


def _telemetry_baseline(
    disabled_seconds: float, tolerance: float = 0.05
) -> dict:
    return {
        "benchmark": "telemetry-overhead",
        "designs": [
            {
                "design": "mbist_24_3",
                "disabled_seconds": disabled_seconds,
                "history_interval": 0.01,
                "tolerance": tolerance,
                **TINY,
            }
        ],
    }


def _write(tmp_path, payload, name="baseline.json") -> str:
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


class TestParsing:
    def test_missing_file_is_a_parse_error(self):
        with pytest.raises(RegressionParseError):
            load_hot_paths("/no/such/baseline.json")

    def test_invalid_json_is_a_parse_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(RegressionParseError):
            load_hot_paths(str(path))

    def test_unknown_benchmark_kind_is_a_parse_error(self, tmp_path):
        payload = _criticality_baseline(1.0)
        payload["benchmark"] = "who-knows"
        with pytest.raises(RegressionParseError, match="who-knows"):
            load_hot_paths(_write(tmp_path, payload))

    def test_missing_row_key_is_a_parse_error(self, tmp_path):
        payload = _criticality_baseline(1.0)
        del payload["designs"][0]["method"]
        with pytest.raises(RegressionParseError, match="method"):
            load_hot_paths(_write(tmp_path, payload))

    def test_missing_timing_is_a_parse_error(self, tmp_path):
        payload = _criticality_baseline(1.0)
        payload["designs"][0]["serial"] = {}
        with pytest.raises(RegressionParseError, match="serial.seconds"):
            load_hot_paths(_write(tmp_path, payload))

    def test_empty_designs_is_a_parse_error(self, tmp_path):
        with pytest.raises(RegressionParseError, match="designs"):
            load_hot_paths(
                _write(tmp_path, {"benchmark": "criticality-engine"})
            )

    def test_hot_paths_carry_metric_and_params(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(0.5))
        benchmark, (hot_path,) = load_hot_paths(path)
        assert benchmark == "criticality-engine"
        assert hot_path.label == "mbist_24_3/serial/fast"
        assert hot_path.baseline_seconds == 0.5
        assert hot_path.params == {"method": "fast"}

    def test_telemetry_rows_parse_with_per_path_tolerance(self, tmp_path):
        path = _write(tmp_path, _telemetry_baseline(1.0, tolerance=0.07))
        benchmark, (hot_path,) = load_hot_paths(path)
        assert benchmark == "telemetry-overhead"
        assert hot_path.metric == "telemetry_overhead"
        assert hot_path.tolerance == 0.07
        assert hot_path.params["history_interval"] == 0.01

    def test_telemetry_tolerance_defaults_to_five_percent(self, tmp_path):
        payload = _telemetry_baseline(1.0)
        del payload["designs"][0]["tolerance"]
        _, (hot_path,) = load_hot_paths(_write(tmp_path, payload))
        assert hot_path.tolerance == 0.05

    def test_other_kinds_carry_no_tolerance_override(self, tmp_path):
        _, (hot_path,) = load_hot_paths(
            _write(tmp_path, _criticality_baseline(1.0))
        )
        assert hot_path.tolerance is None

    def test_real_baselines_parse(self):
        results = Path(__file__).resolve().parents[2] / "results"
        for name in ("criticality", "batch", "ir", "telemetry"):
            benchmark, hot_paths = load_hot_paths(
                str(results / f"BENCH_{name}.json")
            )
            assert hot_paths, benchmark


class TestComparison:
    def test_huge_baseline_passes(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e6))
        report = compare_baseline(path, repeats=1)
        assert report.ok
        (comparison,) = report.comparisons
        assert comparison.ratio < 1.0
        assert not comparison.regressed(0.2)

    def test_tiny_baseline_regresses(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e-9))
        report = compare_baseline(path, repeats=1)
        assert not report.ok
        (comparison,) = report.comparisons
        assert comparison.regressed(0.2)
        assert "REGRESSED" in report.format()

    def test_bitset_metric_measures(self, tmp_path):
        path = _write(tmp_path, _batch_baseline(1e6))
        report = compare_baseline(path, repeats=1)
        assert report.ok
        assert report.benchmark == "bitset-batch-analysis"

    def test_max_segments_skips_loudly(self, tmp_path):
        payload = _criticality_baseline(1e6)
        payload["designs"].append(
            {
                "design": "mbist_99999_9",
                "method": "fast",
                "n_segments": 99999,
                "n_muxes": 9,
                "serial": {"seconds": 1.0},
            }
        )
        path = _write(tmp_path, payload)
        report = compare_baseline(path, repeats=1, max_segments=100)
        assert len(report.comparisons) == 1
        assert len(report.skipped) == 1
        assert "mbist_99999_9" in report.skipped[0]
        assert "skipped" in report.format()

    def test_zero_baseline_counts_as_regression(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(0.0))
        report = compare_baseline(path, repeats=1)
        (comparison,) = report.comparisons
        assert comparison.ratio == float("inf")
        assert not report.ok

    def test_as_dict_is_json_serializable(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e6))
        report = compare_baseline(path, repeats=1)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert payload["comparisons"][0]["label"] == "mbist_24_3/serial/fast"

    def test_measure_uses_the_best_of_repeats(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e6))
        _, (hot_path,) = load_hot_paths(path)
        single = measure_hot_path(hot_path, repeats=1)
        best = measure_hot_path(hot_path, repeats=3)
        assert single > 0 and best > 0

    def test_per_path_tolerance_overrides_gate_tolerance(self):
        hot_path = HotPath(
            design="d",
            metric="telemetry_overhead",
            n_segments=1,
            n_muxes=1,
            baseline_seconds=1.0,
            tolerance=0.05,
        )
        comparison = BenchComparison(hot_path=hot_path, fresh_seconds=1.1)
        # 10% over: within the gate-wide 20% but over the per-path 5%
        assert comparison.regressed(0.2)
        hot_path.tolerance = None
        assert not comparison.regressed(0.2)

    def test_telemetry_measure_overwrites_recorded_baseline(self, tmp_path):
        # The recorded disabled timing is informational: the gate
        # re-measures both sides fresh, so an absurd recorded value must
        # not sway the ratio.
        path = _write(tmp_path, _telemetry_baseline(1e6, tolerance=2.0))
        _, (hot_path,) = load_hot_paths(path)
        enabled = measure_hot_path(hot_path, repeats=1)
        assert enabled > 0
        assert hot_path.baseline_seconds < 1e3  # fresh, not the recorded 1e6

    def test_telemetry_comparison_is_overhead_ratio(self, tmp_path):
        # A generous per-row tolerance keeps this deterministic on noisy
        # machines while still driving the full compare path.
        path = _write(tmp_path, _telemetry_baseline(1e6, tolerance=25.0))
        report = compare_baseline(path, repeats=2)
        assert report.ok, report.format()
        (comparison,) = report.comparisons
        assert comparison.ratio < 26.0


class TestCliExitCodes:
    def test_ok_run_exits_zero(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e6))
        assert main(["bench-diff", path, "--repeats", "1"]) == 0

    def test_regression_exits_one(self, tmp_path):
        path = _write(tmp_path, _criticality_baseline(1e-9))
        assert main(["bench-diff", path, "--repeats", "1"]) == 1

    def test_soft_mode_reports_but_passes(self, tmp_path, capsys):
        path = _write(tmp_path, _criticality_baseline(1e-9))
        assert (
            main(["bench-diff", path, "--repeats", "1", "--soft"]) == 0
        )
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        assert "--soft" in out

    def test_parse_error_exits_two_even_soft(self, tmp_path):
        path = str(tmp_path / "missing.json")
        assert main(["bench-diff", path, "--soft"]) == 2

    def test_multiple_baselines_worst_exit_wins(self, tmp_path):
        good = _write(tmp_path, _criticality_baseline(1e6), "good.json")
        bad = _write(tmp_path, _criticality_baseline(1e-9), "bad.json")
        assert main(["bench-diff", good, bad, "--repeats", "1"]) == 1
