"""Unit tests for structural test generation."""

from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.dft import (
    access_sweep_sequence,
    full_test_sequence,
    port_exercise_sequence,
    untestable_ports,
)
from repro.rsn.ast import elaborate


class TestPortExercise:
    def test_fault_free_passes(self, fig1_network):
        sequence = port_exercise_sequence(fig1_network)
        assert sequence.run() == []

    def test_every_port_noted(self, fig1_network):
        sequence = port_exercise_sequence(fig1_network)
        notes = {pattern.note for pattern in sequence}
        for mux in fig1_network.muxes():
            for port in range(mux.fanin):
                assert f"port {mux.name}:{port}" in notes

    def test_chain_without_muxes_is_empty(self, chain_network):
        sequence = port_exercise_sequence(chain_network)
        assert len(sequence) == 0

    def test_sib_bypass_and_hosted_exercised(self, sib_network):
        sequence = port_exercise_sequence(sib_network)
        covered = sequence.covered_segments()
        assert {"in1", "in2", "pre"} <= covered


class TestAccessSweep:
    def test_covers_all_data_segments(self, fig1_network):
        sequence = access_sweep_sequence(fig1_network)
        expected = {seg.name for seg in fig1_network.data_segments()}
        assert expected <= sequence.covered_segments()

    def test_fault_free_passes(self, nested_sib_network):
        sequence = access_sweep_sequence(nested_sib_network)
        assert sequence.run() == []

    def test_subset_selection(self, chain_network):
        # recording verifies everything on the active path, so neighbours
        # of the requested segment ride along — by design
        sequence = access_sweep_sequence(chain_network, segments=["s2"])
        assert "s2" in sequence.covered_segments()
        assert len(sequence) == 2  # one write, one read-back


class TestFullSuite:
    def test_covers_everything(self, fig1_network):
        sequence = full_test_sequence(fig1_network)
        data = {seg.name for seg in fig1_network.data_segments()}
        assert data <= sequence.covered_segments()
        assert sequence.run() == []

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=3_000))
    def test_random_networks_fault_free_pass(self, seed):
        network = elaborate(
            random_network(seed=seed, max_depth=2, max_items=3)
        )
        sequence = full_test_sequence(network)
        assert sequence.run() == []
        data = {seg.name for seg in network.data_segments()}
        assert data <= sequence.covered_segments()


class TestUntestablePorts:
    def test_none_on_dedicated_selects(self, fig1_network):
        assert untestable_ports(fig1_network) == []

    def test_none_on_shared_cell_parallel(self, shared_cell_network):
        # both muxes want the same value simultaneously on any path, so
        # each port remains individually reachable
        assert untestable_ports(shared_cell_network) == []
