"""Unit tests for fault simulation, coverage and diagnosis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.faults import (
    ControlCellBreak,
    MuxStuck,
    SegmentBreak,
    iter_all_faults,
)
from repro.bench.generators import fig1_example, random_network
from repro.dft import (
    FaultDictionary,
    fault_coverage,
    fault_syndrome,
    full_test_sequence,
)
from repro.rsn.ast import elaborate


@pytest.fixture(scope="module")
def fig1_suite():
    network = fig1_example()
    return network, full_test_sequence(network)


class TestFaultSyndrome:
    def test_detected_stuck_fault(self, fig1_suite):
        _, sequence = fig1_suite
        detected, syndrome = fault_syndrome(sequence, MuxStuck("m0", 1))
        assert detected and syndrome

    def test_detected_break(self, fig1_suite):
        _, sequence = fig1_suite
        detected, syndrome = fault_syndrome(sequence, SegmentBreak("c2"))
        assert detected and syndrome

    def test_cell_break_worst_case_rule(self, fig1_suite):
        _, sequence = fig1_suite
        detected, _ = fault_syndrome(sequence, ControlCellBreak("m0.sel"))
        assert detected


class TestCoverage:
    def test_full_coverage_on_fig1(self, fig1_suite):
        _, sequence = fig1_suite
        report = fault_coverage(sequence)
        assert report.coverage == 1.0
        assert not report.undetected

    def test_subset_of_faults(self, fig1_suite):
        _, sequence = fig1_suite
        faults = [MuxStuck("m0", 0), MuxStuck("m0", 1)]
        report = fault_coverage(sequence, faults=faults)
        assert report.total == 2

    def test_empty_sequence_detects_nothing(self, fig1_suite):
        from repro.dft import PatternSequence

        network, _ = fig1_suite
        report = fault_coverage(PatternSequence(network, []))
        assert report.coverage == 0.0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1_500))
    def test_high_coverage_on_random_networks(self, seed):
        network = elaborate(
            random_network(seed=seed, max_depth=2, max_items=2)
        )
        sequence = full_test_sequence(network)
        report = fault_coverage(sequence)
        assert report.coverage >= 0.9, report.undetected


class TestDiagnosis:
    def test_exact_diagnosis_of_injected_fault(self, fig1_suite):
        _, sequence = fig1_suite
        dictionary = FaultDictionary(sequence)
        truth = MuxStuck("m2", 0)
        observed = sequence.run(faults=[truth])
        (best, score), *_ = dictionary.diagnose(observed)
        assert score == 1.0
        assert best == truth or observed == sorted(
            dictionary.syndromes[best]
        )

    def test_perfect_resolution_on_fig1(self, fig1_suite):
        _, sequence = fig1_suite
        dictionary = FaultDictionary(sequence)
        assert dictionary.resolution() == 1.0
        assert dictionary.ambiguity_groups() == []

    def test_passing_observation_matches_undetected(self, fig1_suite):
        _, sequence = fig1_suite
        dictionary = FaultDictionary(
            sequence, faults=[MuxStuck("m0", 0), MuxStuck("m0", 1)]
        )
        ranked = dictionary.diagnose([])
        # both faults are detected, so an empty syndrome matches neither
        assert all(score < 1.0 for _, score in ranked)

    def test_top_parameter(self, fig1_suite):
        _, sequence = fig1_suite
        dictionary = FaultDictionary(sequence)
        observed = sequence.run(faults=[SegmentBreak("g")])
        assert len(dictionary.diagnose(observed, top=3)) == 3

    def test_dictionary_covers_all_modeled_faults(self, fig1_suite):
        network, sequence = fig1_suite
        dictionary = FaultDictionary(sequence)
        assert len(dictionary.syndromes) == len(
            list(iter_all_faults(network))
        )


class TestDiagnoseDeterminism:
    def test_tie_break_is_structural_not_repr(self, fig1_suite):
        """Regression: ties used to break on ``repr(fault)``, which
        ordered ``MuxStuck('m0', 10)`` before ``MuxStuck('m0', 2)``.
        Identical syndromes must rank in structural-key order."""
        _, sequence = fig1_suite
        from repro.dft import PatternSequence

        empty = PatternSequence(sequence.network, [])
        faults = [MuxStuck("m0", port) for port in (10, 2, 0)]
        dictionary = FaultDictionary(empty, faults=faults)
        ranked = dictionary.diagnose([], top=3)
        assert [fault for fault, _ in ranked] == [
            MuxStuck("m0", 0),
            MuxStuck("m0", 2),
            MuxStuck("m0", 10),
        ]
        assert all(score == 1.0 for _, score in ranked)

    def test_batched_diagnose_matches_scalar_reference(self, fig1_suite):
        _, sequence = fig1_suite
        dictionary = FaultDictionary(sequence)
        observations = [
            sequence.run(faults=[fault])
            for fault in list(dictionary.syndromes)[:12]
        ]
        top = len(dictionary.syndromes)
        for observed in observations:
            assert dictionary.diagnose(
                observed, top=top
            ) == dictionary.diagnose_scalar(observed, top=top)
        batched = dictionary.diagnose_batch(observations, top=top)
        assert batched == [
            dictionary.diagnose_scalar(observed, top=top)
            for observed in observations
        ]

    def test_diagnose_stable_across_dict_order(self, fig1_suite):
        """Rankings are independent of syndrome-dict insertion order."""
        _, sequence = fig1_suite
        forward = FaultDictionary(sequence)
        reversed_syndromes = dict(
            reversed(list(forward.syndromes.items()))
        )
        backward = FaultDictionary(
            sequence, syndromes=reversed_syndromes
        )
        observed = sequence.run(faults=[MuxStuck("m2", 0)])
        assert forward.diagnose(observed, top=10) == backward.diagnose(
            observed, top=10
        )


class TestDictionaryFromCoverage:
    def test_reuses_syndromes(self, fig1_suite):
        from repro.dft import fault_coverage

        _, sequence = fig1_suite
        report = fault_coverage(sequence)
        dictionary = FaultDictionary.from_coverage(sequence, report)
        assert dictionary.syndromes == report.syndromes
