"""Unit tests for merged access scheduling."""

import pytest

from repro.dft import AccessRequest, merge_schedule
from repro.errors import SimulationError


def requests_for(network, *specs):
    result = []
    for name, op, *bits in specs:
        result.append(
            AccessRequest(
                name, op, bits[0] if bits else None
            )
        )
    return result


class TestAccessRequest:
    def test_write_needs_bits(self):
        with pytest.raises(SimulationError):
            AccessRequest("x", "write")

    def test_bad_operation(self):
        with pytest.raises(SimulationError):
            AccessRequest("x", "poke")


class TestMergeSchedule:
    def test_reads_return_register_contents(self, chain_network):
        result = merge_schedule(
            chain_network,
            requests_for(chain_network, ("a", "read"), ("b", "read")),
        )
        assert result.reads["a"] == [0, 0]
        assert result.reads["b"] == [0, 0, 0]

    def test_chain_accesses_merge_into_one_group(self, chain_network):
        result = merge_schedule(
            chain_network,
            requests_for(
                chain_network, ("a", "read"), ("b", "read"), ("c", "read")
            ),
        )
        assert len(result.groups) == 1
        assert result.savings > 0

    def test_writes_land(self, fig1_network):
        result = merge_schedule(
            fig1_network,
            [
                AccessRequest("i1", "write", [1, 0]),
                AccessRequest("i3", "write", [1, 1]),
            ],
        )
        assert len(result.groups) == 1  # both on the m1-port0 path

    def test_conflicting_branches_split_groups(self, fig1_network):
        # i1 (m1 port 0) and i2 (m1 port 1) can never share a path
        result = merge_schedule(
            fig1_network,
            [
                AccessRequest("i1", "write", [1, 0]),
                AccessRequest("i2", "write", [0, 1, 0]),
            ],
        )
        assert len(result.groups) == 2

    def test_mixed_read_write_group(self, sib_network):
        result = merge_schedule(
            sib_network,
            [
                AccessRequest("first", "write", [1, 0]),
                AccessRequest("second", "read"),
                AccessRequest("outside", "read"),
            ],
        )
        assert len(result.groups) == 1
        assert result.reads["second"] == [0, 0, 0]
        assert result.reads["outside"] == [0, 0]

    def test_savings_nonnegative_and_bounded(self, fig1_network):
        names = fig1_network.instrument_names()
        result = merge_schedule(
            fig1_network,
            [AccessRequest(name, "read") for name in names],
        )
        assert 0.0 <= result.savings < 1.0
        assert result.csu_operations <= 2 * len(names)

    def test_merged_matches_sequential_reads(self, fig1_network):
        """Reading after writes via the merged scheduler returns exactly
        what per-access retargeting would."""
        from repro.sim import ScanSimulator

        merged_sim = ScanSimulator(fig1_network)
        merge_schedule(
            fig1_network,
            [AccessRequest("i4", "write", [1, 0, 1, 1])],
            simulator=merged_sim,
        )
        result = merge_schedule(
            fig1_network,
            [AccessRequest("i4", "read")],
            simulator=merged_sim,
        )
        assert result.reads["i4"] == [1, 0, 1, 1]
