"""Unit tests for scan test patterns and sequences."""

from repro.analysis.faults import MuxStuck, SegmentBreak
from repro.dft import PatternSequence, ScanPattern
from repro.sim import ScanSimulator


class TestScanPattern:
    def test_clean_application_no_mismatch(self, chain_network):
        simulator = ScanSimulator(chain_network)
        write = ScanPattern(writes={"s2": [1, 0, 1]})
        assert write.apply(simulator) == []
        read = ScanPattern(expects={"s2": [1, 0, 1]})
        assert read.apply(simulator, index=1) == []

    def test_wrong_expectation_mismatches(self, chain_network):
        simulator = ScanSimulator(chain_network)
        pattern = ScanPattern(expects={"s2": [1, 1, 1]})
        assert pattern.apply(simulator, index=4) == [(4, "s2")]

    def test_write_off_path_counts_as_mismatch(self, sib_network):
        simulator = ScanSimulator(sib_network)  # SIB closed: in1 off path
        pattern = ScanPattern(writes={"in1": [0, 0]})
        assert (0, "in1") in pattern.apply(simulator)

    def test_expect_off_path_counts_as_mismatch(self, sib_network):
        simulator = ScanSimulator(sib_network)
        pattern = ScanPattern(expects={"in1": [0, 0]})
        assert (0, "in1") in pattern.apply(simulator)

    def test_unknown_bits_mismatch(self, chain_network):
        simulator = ScanSimulator(
            chain_network, faults=[SegmentBreak("s1")]
        )
        # shift once so the X from s1 reaches s2
        simulator.scan_cycle({})
        pattern = ScanPattern(expects={"s2": [0, 0, 0]})
        simulator2 = ScanSimulator(
            chain_network, faults=[SegmentBreak("s2")]
        )
        assert pattern.apply(simulator2) == [(0, "s2")]


class TestPatternSequence:
    def test_fault_free_run_passes(self, fig1_network):
        from repro.dft import full_test_sequence

        sequence = full_test_sequence(fig1_network)
        assert sequence.run() == []

    def test_syndrome_nonempty_under_fault(self, fig1_network):
        from repro.dft import full_test_sequence

        sequence = full_test_sequence(fig1_network)
        syndrome = sequence.run(faults=[MuxStuck("m0", 1)])
        assert syndrome

    def test_covered_segments(self, chain_network):
        sequence = PatternSequence(
            chain_network,
            [ScanPattern(expects={"s1": [0, 0]})],
        )
        assert sequence.covered_segments() == {"s1"}

    def test_shift_bits_positive(self, fig1_network):
        from repro.dft import port_exercise_sequence

        sequence = port_exercise_sequence(fig1_network)
        assert sequence.shift_bits() > 0

    def test_len_and_iter(self, chain_network):
        patterns = [ScanPattern(), ScanPattern()]
        sequence = PatternSequence(chain_network, patterns)
        assert len(sequence) == 2
        assert list(sequence) == patterns
