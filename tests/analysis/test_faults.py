"""Unit tests for the fault model value types and enumeration."""

import pytest

from repro.analysis.faults import (
    ControlCellBreak,
    MuxStuck,
    SegmentBreak,
    controlled_muxes,
    faults_of_primitive,
    iter_all_faults,
    sib_stuck_asserted,
    sib_stuck_deasserted,
)
from repro.errors import ReproError


class TestFaultValueTypes:
    def test_equality_and_hash(self):
        assert SegmentBreak("s") == SegmentBreak("s")
        assert SegmentBreak("s") != SegmentBreak("t")
        assert MuxStuck("m", 0) != MuxStuck("m", 1)
        assert len({MuxStuck("m", 0), MuxStuck("m", 0)}) == 1
        assert ControlCellBreak("c") == ControlCellBreak("c")
        assert SegmentBreak("x") != ControlCellBreak("x")

    def test_site_property(self):
        assert SegmentBreak("s").site == "s"
        assert MuxStuck("m", 1).site == "m"
        assert ControlCellBreak("c").site == "c"

    def test_repr_contains_names(self):
        assert "m" in repr(MuxStuck("m", 1))
        assert "port=1" in repr(MuxStuck("m", 1))


class TestSibFaultHelpers:
    def test_stuck_asserted_selects_hosted_port(self, sib_network):
        fault = sib_stuck_asserted(sib_network, "sib0")
        assert fault == MuxStuck("sib0.mux", 1)

    def test_stuck_deasserted_selects_bypass_port(self, sib_network):
        fault = sib_stuck_deasserted(sib_network, "sib0")
        assert fault == MuxStuck("sib0.mux", 0)

    def test_non_sib_unit_rejected(self, mux3_network):
        with pytest.raises(ReproError):
            sib_stuck_asserted(mux3_network, "unit.m.sel")


class TestFaultEnumeration:
    def test_faults_of_data_segment(self, fig1_network):
        assert faults_of_primitive(fig1_network, "a") == (
            SegmentBreak("a"),
        )

    def test_faults_of_control_cell(self, fig1_network):
        assert faults_of_primitive(fig1_network, "m0.sel") == (
            ControlCellBreak("m0.sel"),
        )

    def test_faults_of_mux(self, fig1_network):
        assert faults_of_primitive(fig1_network, "m0") == (
            MuxStuck("m0", 0),
            MuxStuck("m0", 1),
        )

    def test_ports_and_fanout_have_no_faults(self, fig1_network):
        fanouts = [
            name
            for name in fig1_network.node_names()
            if fig1_network.node(name).kind.value == "fanout"
        ]
        assert faults_of_primitive(fig1_network, fanouts[0]) == ()
        assert faults_of_primitive(fig1_network, "scan_in") == ()

    def test_iter_all_faults_census(self, fig1_network):
        faults = list(iter_all_faults(fig1_network))
        breaks = [f for f in faults if isinstance(f, SegmentBreak)]
        cell_breaks = [
            f for f in faults if isinstance(f, ControlCellBreak)
        ]
        stucks = [f for f in faults if isinstance(f, MuxStuck)]
        assert len(breaks) == 5  # the five data segments
        assert len(cell_breaks) == 3  # three select cells
        assert len(stucks) == 6  # three 2:1 muxes

    def test_controlled_muxes(self, fig1_network, shared_cell_network):
        assert controlled_muxes(fig1_network, "m0.sel") == ["m0"]
        assert sorted(
            controlled_muxes(shared_cell_network, "sel")
        ) == ["mA", "mB"]
        assert controlled_muxes(fig1_network, "a") == []
