"""The central property test: three independent implementations of the
fault-accessibility semantics must agree.

1. ``FastDamageAnalysis``    — O(N) prefix-sum aggregates on the tree;
2. ``ExplicitDamageAnalysis`` — literal per-fault effect sets;
3. ``structural_access``      — configuration-enumerating scan-path oracle
   (no decomposition tree involved at all).

Plus the dict-vs-IR parity block: the compiled-IR backends of the graph
analysis and the simulator must be *bit-identical* to the string-keyed
reference backends, on series-parallel and non-series-parallel networks.
"""

import random

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis import analyze_damage
from repro.analysis.damage import FastDamageAnalysis
from repro.analysis.effects import (
    control_cell_break_effect,
    mux_stuck_effect,
    segment_break_effect,
)
from repro.analysis.faults import (
    MuxStuck,
    SegmentBreak,
    faults_of_primitive,
)
from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench.generators import random_network
from repro.errors import SimulationError
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, NodeKind, SegmentRole
from repro.sim import structural_access
from repro.sim.simulator import ScanSimulator
from repro.sp import decompose
from repro.spec import random_spec

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _build_bridge(seed):
    """A seeded non-series-parallel network: the Wheatstone-bridge core
    with randomized segment lengths and a randomized tail chain."""
    rng = random.Random(seed)
    net = RsnNetwork(f"bridge{seed}")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment(
        "sel1", length=rng.randint(1, 2), role=SegmentRole.CONTROL
    )
    net.add_fanout("f1")
    net.add_segment("a", length=rng.randint(1, 4), instrument="ia")
    net.add_segment("b", length=rng.randint(1, 4), instrument="ib")
    net.add_fanout("fa")
    net.add_mux("m1", fanin=2, control_cell="sel1")
    net.add_mux("m2", fanin=2, control_cell="sel1")
    for edge in [
        ("scan_in", "sel1"), ("sel1", "f1"), ("f1", "a"), ("f1", "b"),
        ("a", "fa"), ("fa", "m1"), ("b", "m1"), ("m1", "m2"), ("fa", "m2"),
    ]:
        net.add_edge(*edge)
    tail_count = rng.randint(1, 3)
    previous = "m2"
    for index in range(tail_count):
        name = f"tail{index}"
        net.add_segment(
            name, length=rng.randint(1, 3), instrument=f"it{index}"
        )
        net.add_edge(previous, name)
        previous = name
    net.add_edge(previous, "scan_out")
    net.register_unit(
        ControlUnit("unit.sel1", muxes=["m1", "m2"], cells=["sel1"])
    )
    net.validate()
    spec = random_spec(net.instrument_names(), seed=seed)
    return net, spec


def _build_any(seed, bridge):
    return _build_bridge(seed) if bridge else _build(seed)


@settings(max_examples=50, deadline=None)
@given(seed=seeds)
def test_fast_equals_explicit_on_random_networks(seed):
    network, spec = _build(seed)
    fast = analyze_damage(network, spec, method="fast")
    explicit = analyze_damage(network, spec, method="explicit")
    assert fast.total == pytest.approx(explicit.total)
    for name, value in fast.primitive_damage.items():
        assert value == pytest.approx(
            explicit.primitive_damage[name]
        ), name


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_analysis_sets_equal_oracle_sets(seed):
    """For every fault of every primitive: the instruments the tree-based
    analysis declares inaccessible are exactly those the enumeration
    oracle cannot reach."""
    network, _ = _build(seed)
    spec = random_spec(network.instrument_names(), seed=seed)
    tree = decompose(network)
    fast = FastDamageAnalysis(network, spec, tree=tree)
    instruments = set(network.instrument_names())

    for node in network.nodes():
        if node.kind not in (NodeKind.SEGMENT, NodeKind.MUX):
            continue
        for fault in faults_of_primitive(network, node.name):
            if isinstance(fault, SegmentBreak):
                effect = segment_break_effect(tree, fault.segment)
                assumed = None
            elif isinstance(fault, MuxStuck):
                effect = mux_stuck_effect(tree, fault.mux, fault.port)
                assumed = None
            else:
                assumed = fast.cell_stuck_ports(fault.cell)
                effect = control_cell_break_effect(
                    tree, fault.cell, assumed
                )
            unobs, unset = effect.lost_instruments(network)
            access = structural_access(
                network, faults=[fault], assumed_ports=assumed
            )
            assert instruments - access.observable == unobs, fault
            assert instruments - access.settable == unset, fault


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_total_damage_invariants(seed):
    network, spec = _build(seed)
    report = analyze_damage(network, spec)
    assert report.total >= 0
    assert 0 <= report.hardenable <= report.total + 1e-9
    assert all(v >= 0 for v in report.primitive_damage.values())


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_fault_free_network_fully_accessible(seed):
    """Paper Sec. VI: 'in the defect-free case, all the instruments are
    accessible'."""
    network, _ = _build(seed)
    try:
        access = structural_access(network)
    except SimulationError:
        # The enumeration oracle caps at 2^16 configurations; discard
        # the rare generator draws whose free muxes exceed that — the
        # non-enumerating analyses cover them in the other properties.
        assume(False)
    everything = set(network.instrument_names())
    assert access.observable == everything
    assert access.settable == everything


# ---------------------------------------------------------------------------
# dict-vs-IR parity: the compiled-IR hot paths against the string-keyed
# reference backends they replaced
# ---------------------------------------------------------------------------
def _all_faults(network):
    faults = []
    for node in network.nodes():
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX):
            faults.extend(faults_of_primitive(network, node.name))
    return faults


@settings(max_examples=40, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_graph_ir_backend_bit_identical_to_dict(seed, bridge):
    """Damage reports of the IR-backed graph analysis equal the dict
    reference exactly (not approximately) on SP and non-SP networks."""
    network, spec = _build_any(seed, bridge)
    ir_report = GraphDamageAnalysis(network, spec, backend="ir").report()
    dict_report = GraphDamageAnalysis(
        network, spec, backend="dict"
    ).report()
    assert ir_report.primitive_damage == dict_report.primitive_damage
    assert ir_report.unit_damage == dict_report.unit_damage
    assert ir_report.total == dict_report.total


@settings(max_examples=25, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_graph_ir_effect_sets_equal_dict(seed, bridge):
    network, spec = _build_any(seed, bridge)
    via_ir = GraphDamageAnalysis(network, spec, backend="ir")
    via_dict = GraphDamageAnalysis(network, spec, backend="dict")
    for fault in _all_faults(network):
        effect_ir = via_ir.effect_of_fault(fault)
        effect_dict = via_dict.effect_of_fault(fault)
        assert effect_ir.unobservable == effect_dict.unobservable, fault
        assert effect_ir.unsettable == effect_dict.unsettable, fault


@settings(max_examples=30, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_simulator_ir_path_backend_matches_dict(seed, bridge):
    """Active paths and scan-out bit streams agree between the IR walk
    and the name-dict walk, fault-free and under every single fault."""
    network, _ = _build_any(seed, bridge)
    rng = random.Random(seed)
    fault_sets = [[]]
    all_faults = _all_faults(network)
    if all_faults:
        fault_sets.append([all_faults[seed % len(all_faults)]])
    for faults in fault_sets:
        sim_ir = ScanSimulator(network, faults=faults, path_backend="ir")
        sim_dict = ScanSimulator(
            network, faults=faults, path_backend="dict"
        )
        assert sim_ir.active_path() == sim_dict.active_path()
        for _ in range(3):
            bits = [
                rng.randint(0, 1)
                for _ in range(sim_dict.path_length() + 2)
            ]
            assert sim_ir.shift(list(bits)) == sim_dict.shift(list(bits))
            sim_ir.update()
            sim_dict.update()
            assert sim_ir.active_path() == sim_dict.active_path()
