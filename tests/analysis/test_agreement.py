"""The central property test: three independent implementations of the
fault-accessibility semantics must agree.

1. ``FastDamageAnalysis``    — O(N) prefix-sum aggregates on the tree;
2. ``ExplicitDamageAnalysis`` — literal per-fault effect sets;
3. ``structural_access``      — configuration-enumerating scan-path oracle
   (no decomposition tree involved at all).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import analyze_damage
from repro.analysis.damage import FastDamageAnalysis
from repro.analysis.effects import (
    control_cell_break_effect,
    mux_stuck_effect,
    segment_break_effect,
)
from repro.analysis.faults import (
    MuxStuck,
    SegmentBreak,
    faults_of_primitive,
)
from repro.bench.generators import random_network
from repro.rsn.ast import elaborate
from repro.rsn.primitives import NodeKind
from repro.sim import structural_access
from repro.sp import decompose
from repro.spec import random_spec

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


@settings(max_examples=50, deadline=None)
@given(seed=seeds)
def test_fast_equals_explicit_on_random_networks(seed):
    network, spec = _build(seed)
    fast = analyze_damage(network, spec, method="fast")
    explicit = analyze_damage(network, spec, method="explicit")
    assert fast.total == pytest.approx(explicit.total)
    for name, value in fast.primitive_damage.items():
        assert value == pytest.approx(
            explicit.primitive_damage[name]
        ), name


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_analysis_sets_equal_oracle_sets(seed):
    """For every fault of every primitive: the instruments the tree-based
    analysis declares inaccessible are exactly those the enumeration
    oracle cannot reach."""
    network, _ = _build(seed)
    spec = random_spec(network.instrument_names(), seed=seed)
    tree = decompose(network)
    fast = FastDamageAnalysis(network, spec, tree=tree)
    instruments = set(network.instrument_names())

    for node in network.nodes():
        if node.kind not in (NodeKind.SEGMENT, NodeKind.MUX):
            continue
        for fault in faults_of_primitive(network, node.name):
            if isinstance(fault, SegmentBreak):
                effect = segment_break_effect(tree, fault.segment)
                assumed = None
            elif isinstance(fault, MuxStuck):
                effect = mux_stuck_effect(tree, fault.mux, fault.port)
                assumed = None
            else:
                assumed = fast.cell_stuck_ports(fault.cell)
                effect = control_cell_break_effect(
                    tree, fault.cell, assumed
                )
            unobs, unset = effect.lost_instruments(network)
            access = structural_access(
                network, faults=[fault], assumed_ports=assumed
            )
            assert instruments - access.observable == unobs, fault
            assert instruments - access.settable == unset, fault


@settings(max_examples=40, deadline=None)
@given(seed=seeds)
def test_total_damage_invariants(seed):
    network, spec = _build(seed)
    report = analyze_damage(network, spec)
    assert report.total >= 0
    assert 0 <= report.hardenable <= report.total + 1e-9
    assert all(v >= 0 for v in report.primitive_damage.values())


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_fault_free_network_fully_accessible(seed):
    """Paper Sec. VI: 'in the defect-free case, all the instruments are
    accessible'."""
    network, _ = _build(seed)
    access = structural_access(network)
    everything = set(network.instrument_names())
    assert access.observable == everything
    assert access.settable == everything
