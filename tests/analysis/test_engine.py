"""The parallel + cached criticality engine.

Contracts under test:

* the engine (serial and parallel) is bit-identical to
  :func:`repro.analysis.analyze_damage` for every method / site filter;
* the disk cache round-trips reports and is invalidated by any change to
  the network, the spec, the policy/sites/method or the analysis version;
* an unavailable worker pool degrades gracefully to the serial path;
* the stats instrumentation reports what actually happened.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis import analyze_damage
from repro.analysis import engine as engine_mod
from repro.analysis.engine import (
    CriticalityEngine,
    analysis_fingerprint,
    analyze_damage_cached,
    default_cache_dir,
)
from repro.bench import build_design
from repro.errors import ReproError
from repro.spec import spec_for_network

PARITY_DESIGNS = ["TreeFlat", "q12710", "MBIST_1_5_5"]


def _setup(design, seed=0):
    network = build_design(design)
    spec = spec_for_network(network, seed=seed)
    return network, spec


# ---------------------------------------------------------------------------
# serial / parallel parity
# ---------------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("design", PARITY_DESIGNS)
    def test_serial_engine_matches_reference(self, design):
        network, spec = _setup(design)
        reference = analyze_damage(network, spec)
        report = CriticalityEngine(network, spec).report()
        assert report.primitive_damage == reference.primitive_damage
        assert report.unit_damage == reference.unit_damage
        assert report.total == reference.total

    @pytest.mark.parametrize("design", PARITY_DESIGNS)
    def test_parallel_engine_bit_identical(self, design):
        network, spec = _setup(design)
        serial = CriticalityEngine(network, spec).report()
        engine = CriticalityEngine(
            network, spec, jobs=2, min_parallel_primitives=1
        )
        parallel = engine.report()
        assert engine.stats.workers == 2
        assert engine.stats.parallel_fallback is None
        assert parallel.primitive_damage == serial.primitive_damage
        assert parallel.unit_damage == serial.unit_damage

    @pytest.mark.parametrize("sites", ["all", "control", "mux"])
    def test_site_filters_match_reference(self, sites):
        network, spec = _setup("q12710")
        reference = analyze_damage(network, spec, sites=sites)
        engine = CriticalityEngine(
            network, spec, jobs=2, min_parallel_primitives=1
        )
        assert (
            engine.report(sites=sites).primitive_damage
            == reference.primitive_damage
        )

    @pytest.mark.parametrize("method", ["fast", "explicit", "graph"])
    def test_methods_match_reference(self, method):
        network, spec = _setup("TreeFlat")
        reference = analyze_damage(network, spec, method=method)
        report = CriticalityEngine(network, spec, method=method).report()
        assert report.primitive_damage == reference.primitive_damage

    def test_unknown_method_rejected(self):
        network, spec = _setup("TreeFlat")
        with pytest.raises(ReproError):
            CriticalityEngine(network, spec, method="bogus")

    def test_convenience_wrapper(self):
        network, spec = _setup("TreeFlat")
        report, stats = analyze_damage_cached(network, spec)
        assert report.total == analyze_damage(network, spec).total
        assert stats.cache == "disabled"


# ---------------------------------------------------------------------------
# persistent cache
# ---------------------------------------------------------------------------
class TestDiskCache:
    def test_roundtrip_hit(self, tmp_path):
        network, spec = _setup("TreeFlat")
        first = CriticalityEngine(network, spec, cache_dir=str(tmp_path))
        report = first.report()
        assert first.stats.cache == "miss"
        second = CriticalityEngine(network, spec, cache_dir=str(tmp_path))
        cached = second.report()
        assert second.stats.cache == "hit"
        assert cached.primitive_damage == report.primitive_damage
        assert cached.unit_damage == report.unit_damage
        assert cached.total == report.total

    def test_spec_change_invalidates(self, tmp_path):
        network = build_design("TreeFlat")
        spec0 = spec_for_network(network, seed=0)
        spec1 = spec_for_network(network, seed=1)
        CriticalityEngine(network, spec0, cache_dir=str(tmp_path)).report()
        engine = CriticalityEngine(
            network, spec1, cache_dir=str(tmp_path)
        )
        report = engine.report()
        assert engine.stats.cache == "miss"
        assert report.total == analyze_damage(network, spec1).total

    def test_network_change_invalidates(self, tmp_path):
        network, spec = _setup("TreeFlat")
        key_before = analysis_fingerprint(network, spec)
        CriticalityEngine(network, spec, cache_dir=str(tmp_path)).report()
        # grow the network: a new data segment on the main scan path
        other = build_design("TreeBalanced")
        other_spec = spec_for_network(other, seed=0)
        assert analysis_fingerprint(other, other_spec) != key_before
        engine = CriticalityEngine(
            other, other_spec, cache_dir=str(tmp_path)
        )
        engine.report()
        assert engine.stats.cache == "miss"

    def test_parameters_partition_the_cache(self):
        network, spec = _setup("TreeFlat")
        base = analysis_fingerprint(network, spec)
        assert analysis_fingerprint(network, spec, policy="sum") != base
        assert analysis_fingerprint(network, spec, sites="mux") != base
        assert analysis_fingerprint(network, spec, method="graph") != base
        # deterministic: rebuilding the same design reproduces the key
        network2, spec2 = _setup("TreeFlat")
        assert analysis_fingerprint(network2, spec2) == base

    def test_version_bump_invalidates(self, tmp_path, monkeypatch):
        network, spec = _setup("TreeFlat")
        CriticalityEngine(network, spec, cache_dir=str(tmp_path)).report()
        monkeypatch.setattr(engine_mod, "ANALYSIS_VERSION", "999-test")
        engine = CriticalityEngine(network, spec, cache_dir=str(tmp_path))
        engine.report()
        assert engine.stats.cache == "miss"

    def test_corrupt_entry_recomputed(self, tmp_path):
        network, spec = _setup("TreeFlat")
        first = CriticalityEngine(network, spec, cache_dir=str(tmp_path))
        expected = first.report()
        key = first.stats.cache_key
        path = tmp_path / f"{key}.json"
        path.write_text("{not json")
        engine = CriticalityEngine(network, spec, cache_dir=str(tmp_path))
        report = engine.report()
        assert engine.stats.cache == "miss"
        assert report.primitive_damage == expected.primitive_damage
        # and the corrupt entry was repaired
        assert json.loads(path.read_text())["fingerprint"] == key

    def test_unwritable_cache_dir_does_not_fail(self, tmp_path):
        network, spec = _setup("TreeFlat")
        blocked = tmp_path / "file-not-dir"
        blocked.write_text("")
        engine = CriticalityEngine(
            network, spec, cache_dir=str(blocked / "sub")
        )
        report = engine.report()
        assert report.total == analyze_damage(network, spec).total

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/custom-rsn-cache")
        assert default_cache_dir() == "/tmp/custom-rsn-cache"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir().endswith(
            os.path.join(".cache", "repro-rsn")
        )


# ---------------------------------------------------------------------------
# spawn-mode worker payload
# ---------------------------------------------------------------------------
class TestSpawnPayload:
    """The spawn fallback ships the compiled IR, not the dict network,
    and workers rebuilt from it reproduce the serial damages exactly."""

    def test_payload_carries_compiled_ir(self):
        import pickle

        from repro.ir import CompiledNetwork, intern
        from repro.rsn.network import RsnNetwork

        network, spec = _setup("q12710")
        payload = engine_mod._spawn_payload(
            intern(network), spec, "fast", "max"
        )
        ir, spec_out, method, policy, backend, chunk_lanes = (
            pickle.loads(payload)
        )
        assert isinstance(ir, CompiledNetwork)
        assert not isinstance(ir, RsnNetwork)
        assert ir.fingerprint == intern(network).fingerprint
        assert (method, policy) == ("fast", "max")
        assert (backend, chunk_lanes) == ("ir", 64)
        assert spec_out.to_dict() == spec.to_dict()
        # the IR payload is the smaller wire format
        dict_payload = pickle.dumps((network, spec, "fast", "max"))
        assert len(payload) < len(dict_payload)

    @pytest.mark.parametrize("method", ["fast", "explicit", "graph"])
    def test_spawn_worker_reproduces_serial_damages(self, method):
        from repro.ir import intern

        network, spec = _setup("TreeFlat")
        serial = CriticalityEngine(network, spec, method=method).report()
        payload = engine_mod._spawn_payload(
            intern(network), spec, method, "max"
        )
        previous = engine_mod._WORKER_ANALYSIS
        try:
            engine_mod._worker_init(payload)
            names = list(serial.primitive_damage)
            _, _, _, damages, spans = engine_mod._worker_chunk(names)
            assert spans == []  # no carrier shipped: no span payloads
        finally:
            engine_mod._WORKER_ANALYSIS = previous
        assert dict(zip(names, damages)) == serial.primitive_damage


# ---------------------------------------------------------------------------
# graceful degradation
# ---------------------------------------------------------------------------
class TestDegradation:
    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        network, spec = _setup("q12710")

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool on this host")

        monkeypatch.setattr(engine_mod, "_EXECUTOR_FACTORY", broken_pool)
        engine = CriticalityEngine(
            network, spec, jobs=4, min_parallel_primitives=1
        )
        report = engine.report()
        assert engine.stats.parallel_fallback is not None
        assert "no process pool" in engine.stats.parallel_fallback
        assert engine.stats.workers == 0
        assert (
            report.primitive_damage
            == analyze_damage(network, spec).primitive_damage
        )

    def test_small_network_skips_the_pool(self):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(
            network, spec, jobs=2, min_parallel_primitives=10_000
        )
        report = engine.report()
        assert engine.stats.workers == 0
        assert "too small" in engine.stats.parallel_fallback
        assert report.total == analyze_damage(network, spec).total

    def test_serial_jobs_values(self):
        network, spec = _setup("TreeFlat")
        for jobs in (None, 0, 1):
            engine = CriticalityEngine(network, spec, jobs=jobs)
            engine.report()
            assert engine.stats.workers == 0

    def test_negative_jobs_rejected(self):
        network, spec = _setup("TreeFlat")
        with pytest.raises(ReproError):
            CriticalityEngine(network, spec, jobs=-2)


# ---------------------------------------------------------------------------
# instrumentation
# ---------------------------------------------------------------------------
class TestStats:
    def test_serial_stats_record_work(self):
        network, spec = _setup("q12710")
        engine = CriticalityEngine(network, spec)
        engine.report()
        stats = engine.stats
        assert stats.primitives_evaluated > 0
        # every mux contributes one fault per port, segments one each
        assert stats.faults_evaluated > stats.primitives_evaluated
        assert stats.elapsed_seconds > 0
        assert stats.faults_per_second > 0
        assert stats.cache == "disabled"
        # the memoization layer saw repeated range/dead-interval queries
        assert stats.memo["range_misses"] > 0
        assert stats.memo_hit_rate > 0
        assert "faults/s" in stats.format()

    def test_parallel_stats_record_pool(self):
        network, spec = _setup("MBIST_1_5_5")
        engine = CriticalityEngine(
            network, spec, jobs=2, min_parallel_primitives=1
        )
        engine.report()
        stats = engine.stats
        assert stats.workers == 2
        assert stats.chunks >= 2
        assert stats.distinct_workers >= 1
        assert 0.0 <= stats.worker_utilization <= 1.0
        assert "workers" in stats.format()

    def test_stats_as_dict_is_json_safe(self):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(network, spec)
        engine.report()
        payload = json.dumps(engine.stats.as_dict())
        assert "faults_per_second" in payload


class TestCumulativeStats:
    """`engine.stats` is per-call; `engine.cumulative` survives across
    calls so long-lived holders can read hit-rates and throughput."""

    def test_accumulates_across_reports(self, tmp_path):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(
            network, spec, cache_dir=str(tmp_path)
        )
        first = engine.report()
        miss_faults = engine.stats.faults_evaluated
        second = engine.report()
        assert second.primitive_damage == first.primitive_damage
        cumulative = engine.cumulative
        assert cumulative.reports == 2
        assert cumulative.cache_misses == 1
        assert cumulative.cache_hits == 1
        assert cumulative.cache_hit_rate == 0.5
        # The hit re-served the cached result: faults counted once.
        assert cumulative.faults_evaluated == miss_faults
        assert cumulative.elapsed_seconds > 0
        assert cumulative.faults_per_second > 0

    def test_per_call_stats_stay_per_call(self, tmp_path):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(
            network, spec, cache_dir=str(tmp_path)
        )
        engine.report()
        miss_faults = engine.stats.faults_evaluated
        engine.report()
        assert engine.stats.cache == "hit"
        assert miss_faults > 0

    def test_as_dict_is_json_safe(self):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(network, spec)
        engine.report()
        payload = json.loads(json.dumps(engine.cumulative.as_dict()))
        assert payload["reports"] == 1
        assert payload["cache_hits"] == 0
        assert payload["parallel_fallbacks"] == 0

    def test_fresh_engine_starts_at_zero(self):
        network, spec = _setup("TreeFlat")
        engine = CriticalityEngine(network, spec)
        assert engine.cumulative.reports == 0
        assert engine.cumulative.cache_hit_rate == 0.0
        assert engine.cumulative.faults_per_second == 0.0
