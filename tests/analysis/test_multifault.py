"""Unit tests for the multi-fault extension of the graph analysis."""

import pytest

from repro.analysis import GraphDamageAnalysis, expected_damage_under_rate
from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.sim import structural_access
from repro.spec import spec_for_network, uniform_spec


@pytest.fixture
def analysis(fig1_network):
    return GraphDamageAnalysis(
        fig1_network, uniform_spec(fig1_network.instrument_names())
    )


class TestEffectOfFaults:
    def test_single_fault_matches_single_api(self, analysis):
        for fault in (SegmentBreak("c2"), MuxStuck("m0", 1)):
            joint = analysis.effect_of_faults([fault])
            single = analysis.effect_of_fault(fault)
            assert joint.unobservable == single.unobservable
            assert joint.unsettable == single.unsettable

    def test_pair_matches_oracle(self, analysis, fig1_network):
        faults = [MuxStuck("m0", 1), SegmentBreak("g")]
        effect = analysis.effect_of_faults(faults)
        unobs, unset = effect.lost_instruments(fig1_network)
        access = structural_access(fig1_network, faults=faults)
        instruments = set(fig1_network.instrument_names())
        assert instruments - access.observable == unobs
        assert instruments - access.settable == unset

    def test_pair_at_least_as_bad_as_each_single(self, analysis):
        first = MuxStuck("m0", 1)
        second = SegmentBreak("g")
        joint = analysis.effect_of_faults([first, second])
        for fault in (first, second):
            single = analysis.effect_of_fault(fault)
            assert single.unobservable <= joint.unobservable
            assert single.unsettable <= joint.unsettable

    def test_joint_can_exceed_union(self, fig1_network):
        """Two faults can kill an instrument neither kills alone (break
        one route, pin the other away)."""
        analysis = GraphDamageAnalysis(
            fig1_network, uniform_spec(fig1_network.instrument_names())
        )
        # m2 stuck on the m0-side + break of c2: i4 loses observability
        # only jointly? i4's route is via m0 port1; break c2 kills port0.
        joint = analysis.effect_of_faults(
            [MuxStuck("m2", 1), SegmentBreak("d")]
        )
        union = analysis.effect_of_fault(
            MuxStuck("m2", 1)
        ).union(analysis.effect_of_fault(SegmentBreak("d")))
        assert union.unobservable <= joint.unobservable

    def test_damage_of_faults(self, analysis):
        value = analysis.damage_of_faults(
            [MuxStuck("m0", 1), SegmentBreak("g")]
        )
        assert value >= analysis.damage_of_fault(MuxStuck("m0", 1))

    def test_cell_break_in_multiset(self, analysis):
        effect = analysis.effect_of_faults([ControlCellBreak("m0.sel")])
        single = analysis.effect_of_fault(ControlCellBreak("m0.sel"))
        # the multiset path pins at the same worst ports but evaluates the
        # COMBINED scenario, which can only be at least as severe
        assert single.unsettable <= effect.unsettable | single.unsettable


class TestExpectedDamage:
    def test_zero_rate_zero_damage(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=0)
        assert expected_damage_under_rate(fig1_network, spec, 0.0) == 0.0

    def test_monotone_in_rate(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=0)
        low = expected_damage_under_rate(
            fig1_network, spec, 0.01, samples=60, seed=1
        )
        high = expected_damage_under_rate(
            fig1_network, spec, 0.2, samples=60, seed=1
        )
        assert high > low

    def test_hardening_reduces_expectation(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=0)
        unprotected = expected_damage_under_rate(
            fig1_network, spec, 0.1, samples=80, seed=2
        )
        protected = expected_damage_under_rate(
            fig1_network,
            spec,
            0.1,
            samples=80,
            seed=2,
            hardened_units=fig1_network.unit_names(),
        )
        assert protected < unprotected

    def test_bad_rate_rejected(self, fig1_network):
        from repro.errors import ReproError

        spec = spec_for_network(fig1_network, seed=0)
        with pytest.raises(ReproError):
            expected_damage_under_rate(fig1_network, spec, 1.5)

    def test_deterministic_in_seed(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=0)
        first = expected_damage_under_rate(
            fig1_network, spec, 0.1, samples=40, seed=7
        )
        second = expected_damage_under_rate(
            fig1_network, spec, 0.1, samples=40, seed=7
        )
        assert first == second


from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.rsn.ast import elaborate


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    pick=st.integers(min_value=0, max_value=10_000),
)
def test_random_fault_pairs_match_oracle(seed, pick):
    """Joint two-fault effects agree with the configuration-enumeration
    oracle on random SP networks (breaks and stucks only — cell breaks
    involve the worst-port choice, covered by dedicated tests)."""
    from repro.analysis.faults import faults_of_primitive
    from repro.rsn.primitives import NodeKind

    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = uniform_spec(network.instrument_names())
    analysis = GraphDamageAnalysis(network, spec)
    pool = [
        fault
        for node in network.nodes()
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX)
        for fault in faults_of_primitive(network, node.name)
        if not isinstance(fault, ControlCellBreak)
    ]
    if len(pool) < 2:
        return
    first = pool[pick % len(pool)]
    second = pool[(pick // 7 + 1) % len(pool)]
    if first.site == second.site:
        return
    faults = [first, second]
    effect = analysis.effect_of_faults(faults)
    unobs, unset = effect.lost_instruments(network)
    access = structural_access(network, faults=faults)
    instruments = set(network.instrument_names())
    assert instruments - access.observable == unobs, faults
    assert instruments - access.settable == unset, faults


class TestFirstOrderConsistency:
    def test_small_rate_matches_mean_policy_eq2(self, fig1_network):
        """E[damage]/rate -> sum over sites of the average fault damage as
        rate -> 0, which is exactly Eq. 2 under the 'mean' mux policy."""
        from repro.analysis import analyze_damage

        spec = spec_for_network(fig1_network, seed=3)
        linear = analyze_damage(fig1_network, spec, policy="mean").total
        rate = 0.004
        estimate = expected_damage_under_rate(
            fig1_network, spec, rate, samples=4000, seed=5
        )
        assert estimate / rate == pytest.approx(linear, rel=0.35)
