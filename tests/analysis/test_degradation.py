"""Unit tests for graceful-degradation reporting."""

import pytest

from repro.analysis import degrade, worst_surviving_faults
from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.spec import CriticalitySpec, spec_for_network


class TestDegrade:
    def test_fig4_defect(self, fig1_network):
        report = degrade(fig1_network, MuxStuck("m0", 1))
        assert report.lost_observation == {"i1", "i2", "i3"}
        assert report.intact == {"i4", "i5"}
        assert 0.0 < report.residual_capability < 1.0

    def test_break_asymmetry(self, fig1_network):
        report = degrade(fig1_network, SegmentBreak("c2"))
        assert "i1" in report.lost_observation
        assert "i1" not in report.lost_control

    def test_weighted_capability(self, fig1_network):
        heavy = CriticalitySpec(
            {"i4": (98.0, 0.0), "i5": (1.0, 1.0)},
        )
        # losing i4 under this spec is catastrophic
        report = degrade(fig1_network, MuxStuck("m0", 0), spec=heavy)
        assert report.residual_capability == pytest.approx(0.02)

    def test_capability_one_for_harmless_fault(self, sib_network):
        # SIB stuck asserted: everything stays reachable
        report = degrade(sib_network, MuxStuck("sib0.mux", 1))
        assert report.lost == set()
        assert report.residual_capability == 1.0

    def test_strict_mode_catches_config_cutoff(self, nested_sib_network):
        report = degrade(
            nested_sib_network,
            ControlCellBreak("outer.bit"),
            strict=True,
        )
        assert report.sequential_losses is not None
        # structurally fine instruments may still be sequentially lost
        assert report.lost >= (
            report.lost_observation | report.lost_control
        )


class TestWorstSurvivingFaults:
    def test_ranking_ascending_capability(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=1)
        reports = worst_surviving_faults(fig1_network, spec, [], count=5)
        capabilities = [r.residual_capability for r in reports]
        assert capabilities == sorted(capabilities)
        assert len(reports) == 5

    def test_hardened_units_excluded(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=1)
        everything = list(fig1_network.unit_names()) + [
            seg.name for seg in fig1_network.data_segments()
        ]
        reports = worst_surviving_faults(
            fig1_network, spec, everything, count=10
        )
        assert reports == []

    def test_hardening_improves_worst_case(self, fig1_network):
        spec = spec_for_network(fig1_network, seed=1)
        unprotected = worst_surviving_faults(fig1_network, spec, [], count=1)
        top_unit = unprotected[0].fault.site
        unit = fig1_network.unit_of(top_unit)
        hardened = [unit.name if unit else top_unit]
        protected = worst_surviving_faults(
            fig1_network, spec, hardened, count=1
        )
        assert (
            protected[0].residual_capability
            >= unprotected[0].residual_capability
        )
