"""Parity and property tests of the bit-parallel batch analysis.

The bitset backend packs 64 fault lanes per ``uint64`` word and solves
reachability for all of them in vectorized topo-order sweeps; every damage
it reports must be *bit-identical* (``==``, never approx) to the scalar
``ir`` and ``dict`` backends, on series-parallel and non-series-parallel
networks, for single faults, fault multisets and whole reports.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.batch import BatchFaultAnalysis
from repro.analysis.engine import CriticalityEngine
from repro.analysis.faults import ControlCellBreak, faults_of_primitive
from repro.analysis.graph_analysis import (
    GraphDamageAnalysis,
    expected_damage_under_rate,
)
from repro.bench.generators import random_network
from repro.ir import LANE_BITS, intern, lane_words
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, NodeKind, SegmentRole
from repro.spec import random_spec

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _build_bridge(seed):
    """A seeded non-series-parallel network (same shape as the
    Wheatstone-bridge generator in ``test_agreement``)."""
    rng = random.Random(seed)
    net = RsnNetwork(f"bridge{seed}")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment(
        "sel1", length=rng.randint(1, 2), role=SegmentRole.CONTROL
    )
    net.add_fanout("f1")
    net.add_segment("a", length=rng.randint(1, 4), instrument="ia")
    net.add_segment("b", length=rng.randint(1, 4), instrument="ib")
    net.add_fanout("fa")
    net.add_mux("m1", fanin=2, control_cell="sel1")
    net.add_mux("m2", fanin=2, control_cell="sel1")
    for edge in [
        ("scan_in", "sel1"), ("sel1", "f1"), ("f1", "a"), ("f1", "b"),
        ("a", "fa"), ("fa", "m1"), ("b", "m1"), ("m1", "m2"), ("fa", "m2"),
    ]:
        net.add_edge(*edge)
    tail_count = rng.randint(1, 3)
    previous = "m2"
    for index in range(tail_count):
        name = f"tail{index}"
        net.add_segment(
            name, length=rng.randint(1, 3), instrument=f"it{index}"
        )
        net.add_edge(previous, name)
        previous = name
    net.add_edge(previous, "scan_out")
    net.register_unit(
        ControlUnit("unit.sel1", muxes=["m1", "m2"], cells=["sel1"])
    )
    net.validate()
    spec = random_spec(net.instrument_names(), seed=seed)
    return net, spec


def _build_any(seed, bridge):
    return _build_bridge(seed) if bridge else _build(seed)


def _all_faults(network):
    faults = []
    for node in network.nodes():
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX):
            faults.extend(faults_of_primitive(network, node.name))
    return faults


def _backends(network, spec, **kwargs):
    return (
        GraphDamageAnalysis(network, spec, backend="bitset", **kwargs),
        GraphDamageAnalysis(network, spec, backend="ir", **kwargs),
        GraphDamageAnalysis(network, spec, backend="dict", **kwargs),
    )


# ---------------------------------------------------------------------------
# lane helpers
# ---------------------------------------------------------------------------
def test_lane_words():
    assert LANE_BITS == 64
    assert lane_words(0) == 0
    assert lane_words(1) == 1
    assert lane_words(64) == 1
    assert lane_words(65) == 2
    assert lane_words(4096) == 64


def test_mux_dead_slots_wrap_and_exclude_pinned():
    network, _ = _build_bridge(0)
    ir = intern(network)
    mux_id = ir.id_of("m1")
    lo = ir.pred_indptr[mux_id]
    assert ir.fanin[mux_id] == 2
    assert ir.mux_dead_slots(mux_id, 0) == [lo + 1]
    assert ir.mux_dead_slots(mux_id, 1) == [lo]
    # ports wrap modulo fanin, exactly like the scalar traversals
    assert ir.mux_dead_slots(mux_id, 2) == ir.mux_dead_slots(mux_id, 0)


def test_succ_pred_slots_is_a_bijection_onto_pred_slots():
    network, _ = _build_bridge(1)
    ir = intern(network)
    mapping = ir.succ_pred_slots()
    assert sorted(mapping.tolist()) == list(range(len(ir.pred_indices)))
    # each mapped slot names the same edge: succ_indices[s] owns the
    # pred slot, and the predecessor there is the slot's source node
    pred_indptr = list(ir.pred_indptr)
    for slot, pslot in enumerate(mapping.tolist()):
        dst = ir.succ_indices[slot]
        assert pred_indptr[dst] <= pslot < pred_indptr[dst + 1]


# ---------------------------------------------------------------------------
# bit-identical damage parity across all three backends
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_damage_vector_bit_identical_across_backends(seed, bridge):
    """The lane-packed damage of every fault in the universe equals the
    per-fault scalar backends exactly, on SP and bridge networks."""
    network, spec = _build_any(seed, bridge)
    faults = _all_faults(network)
    bitset, via_ir, via_dict = _backends(network, spec)
    batch = bitset.damage_vector(faults).tolist()
    scalar_ir = [via_ir.damage_of_fault(fault) for fault in faults]
    scalar_dict = [via_dict.damage_of_fault(fault) for fault in faults]
    assert batch == scalar_ir
    assert batch == scalar_dict


@settings(max_examples=25, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_report_bit_identical_across_backends(seed, bridge):
    network, spec = _build_any(seed, bridge)
    bitset, via_ir, _ = _backends(network, spec)
    for sites in ("all", "control", "mux"):
        got = bitset.report(sites=sites)
        want = via_ir.report(sites=sites)
        assert got.primitive_damage == want.primitive_damage
        assert got.unit_damage == want.unit_damage
        assert got.total == want.total


@settings(max_examples=20, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_effect_sets_bit_identical_across_backends(seed, bridge):
    network, spec = _build_any(seed, bridge)
    bitset, via_ir, _ = _backends(network, spec)
    for fault in _all_faults(network):
        got = bitset.effect_of_fault(fault)
        want = via_ir.effect_of_fault(fault)
        assert got.unobservable == want.unobservable, fault
        assert got.unsettable == want.unsettable, fault


@settings(max_examples=20, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_multiset_damage_bit_identical_across_backends(seed, bridge):
    """Simultaneous fault multisets: one combined lane equals the scalar
    combined-state evaluation, including broken-cell mux pinning."""
    network, spec = _build_any(seed, bridge)
    faults = _all_faults(network)
    rng = random.Random(seed)
    bitset, via_ir, _ = _backends(network, spec)
    fault_sets = [
        rng.sample(faults, min(len(faults), rng.randint(1, 4)))
        for _ in range(5)
    ]
    batch = bitset.damage_of_fault_sets(fault_sets)
    scalar = [via_ir.damage_of_faults(fs) for fs in fault_sets]
    assert batch == scalar
    for fs in fault_sets:
        got = bitset.effect_of_faults(fs)
        want = via_ir.effect_of_faults(fs)
        assert got.unobservable == want.unobservable
        assert got.unsettable == want.unsettable


@settings(max_examples=10, deadline=None)
@given(seed=seeds)
def test_cell_stuck_ports_match_scalar_rule(seed):
    network, spec = _build_bridge(seed)
    bitset, via_ir, _ = _backends(network, spec)
    for node in network.nodes():
        for fault in faults_of_primitive(network, node.name):
            if isinstance(fault, ControlCellBreak):
                assert bitset.cell_stuck_ports(fault.cell) == (
                    via_ir.cell_stuck_ports(fault.cell)
                ), fault.cell


def test_expected_damage_backends_agree():
    network, spec = _build(3)
    kwargs = dict(defect_rate=0.05, samples=40, seed=7)
    assert expected_damage_under_rate(
        network, spec, backend="bitset", **kwargs
    ) == expected_damage_under_rate(network, spec, backend="ir", **kwargs)


# ---------------------------------------------------------------------------
# edge cases: lane-count boundaries, chunking, composites
# ---------------------------------------------------------------------------
def test_empty_fault_list():
    network, spec = _build(0)
    analysis = GraphDamageAnalysis(network, spec, backend="bitset")
    assert analysis.damage_vector([]).tolist() == []
    assert analysis.damage_of_fault_sets([]) == []


def test_single_fault():
    network, spec = _build(1)
    fault = _all_faults(network)[0]
    bitset, via_ir, _ = _backends(network, spec)
    assert bitset.damage_vector([fault]).tolist() == [
        via_ir.damage_of_fault(fault)
    ]
    assert bitset.damage_of_fault(fault) == via_ir.damage_of_fault(fault)


@pytest.mark.parametrize("count", [63, 64, 65, 130])
def test_fault_count_not_multiple_of_word_size(count):
    """Lane counts straddling the uint64 boundary: partial last words
    must not leak all-ones padding lanes into real results."""
    network, spec = _build(5)
    universe = _all_faults(network)
    faults = [universe[i % len(universe)] for i in range(count)]
    bitset, via_ir, _ = _backends(network, spec)
    batch = bitset.damage_vector(faults).tolist()
    scalar = [via_ir.damage_of_fault(fault) for fault in faults]
    assert batch == scalar


@settings(max_examples=15, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_tiny_chunks_equal_unchunked(seed, bridge):
    """chunk_lanes=1 forces many chunks (and composite faults that fill
    a chunk alone); results must not depend on the chunking."""
    network, spec = _build_any(seed, bridge)
    faults = _all_faults(network)
    one = GraphDamageAnalysis(
        network, spec, backend="bitset", chunk_lanes=1
    )
    big = GraphDamageAnalysis(
        network, spec, backend="bitset", chunk_lanes=64
    )
    assert one.damage_vector(faults).tolist() == (
        big.damage_vector(faults).tolist()
    )
    assert one.batch_counters["chunks"] >= big.batch_counters["chunks"]


def test_deduplication_shares_lanes():
    """The same fault listed twice occupies one lane, not two."""
    network, spec = _build(2)
    fault = _all_faults(network)[0]
    analysis = BatchFaultAnalysis(network, spec)
    damages = analysis.damage_vector([fault, fault, fault])
    assert damages[0] == damages[1] == damages[2]
    assert analysis.counters["lanes"] == 1


# ---------------------------------------------------------------------------
# the fixpoint argument: one topo-order sweep suffices on a DAG
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_single_sweep_reaches_fixpoint(seed, bridge):
    """A change-tracked second sweep after the first must be a no-op, in
    both directions, fault-free and under a representative fault state —
    the property that lets the kernel skip runtime fixpoint iteration."""
    network, spec = _build_any(seed, bridge)
    analysis = BatchFaultAnalysis(network, spec)
    faults = _all_faults(network)
    states = [analysis._state((), {})]
    if faults:
        states.extend(
            analysis._components(faults[seed % len(faults)])
        )
    prop, alive, words = analysis._masks(states)
    for direction, seed_node in (
        ("forward", analysis.ir.scan_in),
        ("backward", analysis.ir.scan_out),
    ):
        reach = np.zeros((analysis.ir.n_nodes, words), dtype=np.uint64)
        reach[seed_node] = np.uint64(0xFFFFFFFFFFFFFFFF)
        sweep = (
            analysis.forward_pass
            if direction == "forward"
            else analysis.backward_pass
        )
        sweep(reach, prop, alive, track=True)
        assert sweep(reach, prop, alive, track=True) is False, direction


# ---------------------------------------------------------------------------
# engine integration: lane-chunked parallel tasks
# ---------------------------------------------------------------------------
def test_engine_bitset_serial_matches_ir_engine():
    network, spec = _build(11)
    base = CriticalityEngine(network, spec, method="graph").report()
    engine = CriticalityEngine(
        network, spec, method="graph", backend="bitset"
    )
    report = engine.report()
    assert report.primitive_damage == base.primitive_damage
    assert engine.stats.backend == "bitset"
    assert engine.stats.lanes > 0
    assert engine.stats.lane_chunks > 0


def test_engine_bitset_parallel_matches_serial():
    network, spec = _build(13)
    serial = CriticalityEngine(
        network, spec, method="graph", backend="bitset"
    )
    serial_report = serial.report()
    parallel = CriticalityEngine(
        network,
        spec,
        method="graph",
        backend="bitset",
        jobs=2,
        chunk_lanes=1,
        min_parallel_primitives=1,
    )
    parallel_report = parallel.report()
    assert parallel_report.primitive_damage == (
        serial_report.primitive_damage
    )
    assert parallel.stats.parallel_fallback is None
    assert parallel.stats.workers == 2
    # worker-side lane counters travel back through the task results
    # (chunking changes dedup opportunities, so only >= holds exactly)
    assert parallel.stats.lanes >= serial.stats.lanes > 0
    # chunk_lanes=1 forces one kernel chunk per lane word
    assert parallel.stats.lane_chunks > 1


def test_engine_rejects_backend_for_tree_methods():
    from repro.errors import ReproError

    network, spec = _build(4)
    with pytest.raises(ReproError):
        CriticalityEngine(network, spec, method="fast", backend="bitset")


def test_fingerprint_folds_backend():
    from repro.analysis.engine import analysis_fingerprint

    network, spec = _build(6)
    assert analysis_fingerprint(
        network, spec, "graph", "max", "all", "ir"
    ) != analysis_fingerprint(
        network, spec, "graph", "max", "all", "bitset"
    )


def test_stats_surface_lane_counters():
    network, spec = _build(8)
    engine = CriticalityEngine(
        network, spec, method="graph", backend="bitset"
    )
    engine.report()
    as_dict = engine.stats.as_dict()
    assert as_dict["backend"] == "bitset"
    assert as_dict["lanes"] == engine.stats.lanes
    assert "fault lanes" in engine.stats.format()


# ---------------------------------------------------------------------------
# primitive-damage chunk query (the engine worker's entry point)
# ---------------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=seeds, bridge=st.booleans())
def test_primitive_damages_match_scalar(seed, bridge):
    network, spec = _build_any(seed, bridge)
    names = [
        node.name
        for node in network.nodes()
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX)
    ]
    bitset, via_ir, _ = _backends(network, spec)
    assert bitset.primitive_damages(names) == [
        via_ir.primitive_damage(name) for name in names
    ]
