"""Unit tests for the structural statistics helpers."""

from repro.analysis import hierarchy_depth, kill_sizes, network_statistics
from repro.bench import build_design
from repro.sp import decompose


class TestHierarchyDepth:
    def test_chain_has_zero_depth(self, chain_network):
        assert hierarchy_depth(decompose(chain_network)) == 0

    def test_single_sib_depth_one(self, sib_network):
        assert hierarchy_depth(decompose(sib_network)) == 1

    def test_nested_sibs_depth_two(self, nested_sib_network):
        assert hierarchy_depth(decompose(nested_sib_network)) == 2

    def test_fig1_depth(self, fig1_network):
        assert hierarchy_depth(decompose(fig1_network)) == 3


class TestKillSizes:
    def test_fig1_values(self, fig1_network):
        sizes = kill_sizes(fig1_network)
        assert sizes["m1"] == 1      # worst stuck kills a or b
        assert sizes["m0"] == 3      # kills i1-i3 (Fig. 4)
        assert sizes["m2"] == 4      # kills the whole m0 side

    def test_sib_kill_is_hosted_instruments(self, sib_network):
        sizes = kill_sizes(sib_network)
        assert sizes["sib0.mux"] == 2

    def test_flat_chain_kills_are_small(self):
        network = build_design("TreeFlat")
        sizes = kill_sizes(network)
        assert max(sizes.values()) <= 3


class TestNetworkStatistics:
    def test_keys_and_consistency(self, fig1_network):
        stats = network_statistics(fig1_network)
        assert stats["n_segments"] == 5
        assert stats["n_muxes"] == 3
        assert stats["n_instruments"] == 5
        assert stats["max_kill"] == 4
        assert 0.0 <= stats["kill_concentration"] <= 1.0

    def test_nested_mbist_more_concentrated_than_flat(self):
        flat = network_statistics(build_design("TreeFlat"))
        nested = network_statistics(build_design("MBIST_1_5_5"))
        assert nested["max_kill"] > flat["max_kill"]
        assert nested["hierarchy_depth"] > flat["hierarchy_depth"]

    def test_no_mux_network(self, chain_network):
        stats = network_statistics(chain_network)
        assert stats["max_kill"] == 0
        assert stats["mean_kill"] == 0.0
