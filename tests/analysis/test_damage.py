"""Unit tests for the damage analyses (Eq. 1 / Eq. 2)."""

import pytest

from repro.analysis import analyze_damage
from repro.analysis.damage import (
    ExplicitDamageAnalysis,
    FastDamageAnalysis,
    _maximal_intervals,
)
from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.errors import ReproError
from repro.spec import CriticalitySpec, uniform_spec


class TestFastAnalysisFaults:
    def test_chain_break_damage(self, chain_network):
        spec = CriticalitySpec({"a": (1, 2), "b": (4, 8), "c": (16, 32)})
        analysis = FastDamageAnalysis(chain_network, spec)
        # break s2 (hosts b): unobservable {s1,s2} -> do(a)+do(b);
        # unsettable {s2,s3} -> ds(b)+ds(c)
        assert analysis.damage_of_fault(SegmentBreak("s2")) == (
            1 + 4 + 8 + 32
        )

    def test_mux_stuck_damage(self, fig1_network, fig1_spec):
        analysis = FastDamageAnalysis(fig1_network, fig1_spec)
        # stuck-at-1 kills i1,i2,i3: sum of do+ds
        expected = (1 + 11) + (2 + 12) + (3 + 13)
        assert analysis.damage_of_fault(MuxStuck("m0", 1)) == expected

    def test_stuck_damage_per_port_differs(self, fig1_network, fig1_spec):
        analysis = FastDamageAnalysis(fig1_network, fig1_spec)
        kill_branch0 = analysis.damage_of_fault(MuxStuck("m0", 1))
        kill_branch1 = analysis.damage_of_fault(MuxStuck("m0", 0))
        assert kill_branch1 == 4 + 14  # i4 only
        assert kill_branch0 != kill_branch1

    def test_unknown_port_rejected(self, fig1_network, fig1_spec):
        analysis = FastDamageAnalysis(fig1_network, fig1_spec)
        with pytest.raises(ReproError):
            analysis.damage_of_fault(MuxStuck("m0", 5))

    def test_cell_break_at_least_break_damage(self, sib_network):
        spec = uniform_spec(sib_network.instrument_names())
        analysis = FastDamageAnalysis(sib_network, spec)
        cell = analysis.damage_of_fault(ControlCellBreak("sib0.bit"))
        # the bit break costs the settability of in1+in2 (2.0) and the
        # observability of 'pre' upstream on the trunk (1.0); pinning the
        # mux at bypass adds the hosted chain's observability (2.0)
        assert cell == 5.0

    def test_worst_stuck_port(self, fig1_network, fig1_spec):
        analysis = FastDamageAnalysis(fig1_network, fig1_spec)
        assert analysis.worst_stuck_port("m0") == 1  # killing i1-i3 is worse

    def test_policies(self, fig1_network, fig1_spec):
        values = {}
        for policy in ("max", "sum", "mean"):
            report = analyze_damage(
                fig1_network, fig1_spec, method="fast", policy=policy
            )
            values[policy] = report.primitive_damage["m0"]
        assert values["max"] >= values["mean"]
        assert values["sum"] == pytest.approx(
            values["mean"] * 2
        )  # two ports
        assert values["sum"] >= values["max"]

    def test_bad_policy_rejected(self, fig1_network, fig1_spec):
        with pytest.raises(ReproError):
            FastDamageAnalysis(fig1_network, fig1_spec, policy="median")

    def test_bad_method_rejected(self, fig1_network, fig1_spec):
        with pytest.raises(ReproError):
            analyze_damage(fig1_network, fig1_spec, method="magic")


class TestDamageReport:
    def test_report_totals(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        assert report.total == pytest.approx(
            sum(report.primitive_damage.values())
        )
        assert report.hardenable == pytest.approx(
            sum(report.unit_damage.values())
        )
        assert report.unavoidable == pytest.approx(
            report.total - report.hardenable
        )

    def test_all_damages_nonnegative(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        assert all(v >= 0 for v in report.primitive_damage.values())

    def test_residual_monotone(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        units = sorted(report.unit_damage)
        previous = report.total
        hardened = []
        for unit in units:
            hardened.append(unit)
            current = report.residual(hardened)
            assert current <= previous + 1e-9
            previous = current

    def test_residual_all_hardened_is_unavoidable(
        self, fig1_network, fig1_spec
    ):
        report = analyze_damage(fig1_network, fig1_spec)
        assert report.residual(report.unit_damage.keys()) == pytest.approx(
            report.unavoidable
        )

    def test_residual_unknown_unit_rejected(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        with pytest.raises(ReproError):
            report.residual(["ghost"])

    def test_unit_damage_vector_alignment(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        names = sorted(report.unit_damage)
        vector = report.unit_damage_vector(names)
        for value, name in zip(vector, names):
            assert value == report.unit_damage[name]

    def test_most_critical_units_sorted(self, fig1_network, fig1_spec):
        report = analyze_damage(fig1_network, fig1_spec)
        ranked = report.most_critical_units(10)
        damages = [damage for _, damage in ranked]
        assert damages == sorted(damages, reverse=True)

    def test_outer_mux_most_critical(self, fig1_network, fig1_spec):
        """m2 can cut off the larger side of the network — its unit must
        rank highest."""
        report = analyze_damage(fig1_network, fig1_spec)
        top_unit, _ = report.most_critical_units(1)[0]
        assert top_unit == "unit.m2.sel"


class TestExplicitAnalysis:
    def test_same_interface(self, fig1_network, fig1_spec):
        analysis = ExplicitDamageAnalysis(fig1_network, fig1_spec)
        assert analysis.damage_of_fault(MuxStuck("m0", 0)) == 4 + 14

    def test_zero_weight_spec_zero_damage(self, fig1_network):
        spec = CriticalitySpec({})
        report = analyze_damage(fig1_network, spec, method="explicit")
        assert report.total == 0.0


class TestSharedCells:
    def test_shared_cell_break_covers_both_muxes(self, shared_cell_network):
        spec = uniform_spec(shared_cell_network.instrument_names())
        fast = FastDamageAnalysis(shared_cell_network, spec)
        explicit = ExplicitDamageAnalysis(shared_cell_network, spec)
        fault = ControlCellBreak("sel")
        assert fast.damage_of_fault(fault) == pytest.approx(
            explicit.damage_of_fault(fault)
        )
        # the break loses settability of all four instrument segments and
        # each pinned mux kills one branch in addition
        assert fast.damage_of_fault(fault) >= 4.0

    def test_cell_stuck_ports_consistent(self, shared_cell_network):
        spec = uniform_spec(shared_cell_network.instrument_names())
        fast = FastDamageAnalysis(shared_cell_network, spec)
        explicit = ExplicitDamageAnalysis(shared_cell_network, spec)
        assert fast.cell_stuck_ports("sel") == explicit.cell_stuck_ports(
            "sel"
        )


class TestMarginalRule:
    def test_ds_heavy_branch_not_chosen(self):
        """A branch whose weight is all settability is already lost to the
        cell break; the worst stuck value must kill the do-heavy branch."""
        from repro.rsn import RsnBuilder

        builder = RsnBuilder("marginal")
        with builder.mux("m") as mux:
            with mux.branch():
                builder.segment("s1", instrument="x1")
            with mux.branch():
                builder.segment("s2", instrument="x2")
        network = builder.build()
        spec = CriticalitySpec({"x1": (0, 100), "x2": (10, 0)})
        for cls in (FastDamageAnalysis, ExplicitDamageAnalysis):
            analysis = cls(network, spec)
            ports = analysis.cell_stuck_ports("m.sel")
            # stuck at port 0 keeps s1 -> kills s2 (do 10 marginal);
            # stuck at port 1 kills s1 (do 0 marginal)
            assert ports == {"m": 0}
            assert analysis.damage_of_fault(
                ControlCellBreak("m.sel")
            ) == pytest.approx(110.0)


class TestMaximalIntervals:
    def test_nested_dropped(self):
        assert _maximal_intervals([(2, 10), (3, 5), (12, 13)]) == [
            (2, 10),
            (12, 13),
        ]

    def test_duplicates_dropped(self):
        assert _maximal_intervals([(1, 4), (1, 4)]) == [(1, 4)]

    def test_empty(self):
        assert _maximal_intervals([]) == []
