"""Engine disk cache under sharing and a size cap.

The cache directory is a shared resource: worker threads of the service
and independent processes all read/write the same files, relying on the
atomic ``os.replace`` store.  The LRU cap (``max_cache_mb``) prunes the
directory oldest-first after each store.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.analysis.engine import CriticalityEngine, analyze_damage_cached
from repro.bench import build_design
from repro.errors import ReproError
from repro.spec import spec_for_network

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
)


def _engine(cache_dir, seed=0, design="TreeFlat", **kwargs):
    network = build_design(design)
    spec = spec_for_network(network, seed=seed)
    return CriticalityEngine(
        network, spec, cache_dir=str(cache_dir), **kwargs
    )


def test_threads_sharing_cache_dir_agree_bit_identically(tmp_path):
    """8 threads, each with its own engine on the same cache_dir: every
    report is bit-identical and at least one run is served from disk."""
    reports = [None] * 8
    stats = [None] * 8
    barrier = threading.Barrier(8)

    def run(index):
        engine = _engine(tmp_path)
        barrier.wait(timeout=10.0)
        reports[index] = engine.report()
        stats[index] = engine.stats

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(8)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60.0)

    reference = reports[0]
    assert reference is not None
    for report in reports[1:]:
        assert report.primitive_damage == reference.primitive_damage
        assert report.unit_damage == reference.unit_damage
        assert report.total == reference.total
    outcomes = {s.cache for s in stats}
    assert outcomes <= {"hit", "miss"}
    # A fresh dir means somebody missed; a later run must then hit.
    follow_up = _engine(tmp_path)
    follow_up.report()
    assert follow_up.stats.cache == "hit"


def test_second_process_hits_cache_written_here(tmp_path):
    """A separate interpreter on the same cache_dir reproduces the exact
    report from disk — the cross-process contract behind ``serve``."""
    engine = _engine(tmp_path)
    report = engine.report()
    assert engine.stats.cache == "miss"

    script = """
import json, sys
from repro.analysis.engine import CriticalityEngine
from repro.bench import build_design
from repro.spec import spec_for_network

network = build_design("TreeFlat")
engine = CriticalityEngine(
    network, spec_for_network(network, seed=0), cache_dir=sys.argv[1]
)
report = engine.report()
json.dump(
    {
        "cache": engine.stats.cache,
        "total": report.total,
        "primitive_damage": report.primitive_damage,
    },
    sys.stdout,
)
"""
    result = subprocess.run(
        [sys.executable, "-c", script, str(tmp_path)],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": REPO_SRC},
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    import json

    payload = json.loads(result.stdout)
    assert payload["cache"] == "hit"
    assert payload["total"] == report.total
    assert payload["primitive_damage"] == report.primitive_damage


def test_concurrent_writers_leave_no_partial_files(tmp_path):
    """Concurrent stores of different keys (atomic ``os.replace``): every
    surviving cache file is complete, valid JSON."""
    import json

    def run(seed):
        _engine(tmp_path, seed=seed).report()

    threads = [
        threading.Thread(target=run, args=(seed,)) for seed in range(6)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)

    files = [f for f in os.listdir(tmp_path) if f.endswith(".json")]
    assert len(files) == 6  # one entry per distinct spec seed
    for name in files:
        with open(os.path.join(tmp_path, name)) as handle:
            payload = json.load(handle)
        assert "primitive_damage" in payload


# -- LRU size cap ---------------------------------------------------------


def test_max_cache_mb_rejects_non_positive():
    network = build_design("TreeFlat")
    spec = spec_for_network(network, seed=0)
    with pytest.raises(ReproError):
        CriticalityEngine(network, spec, max_cache_mb=0)
    with pytest.raises(ReproError):
        CriticalityEngine(network, spec, max_cache_mb=-1.5)


def test_lru_prunes_oldest_entries_beyond_budget(tmp_path):
    """With a budget that holds roughly one report, older entries are
    evicted oldest-first as new seeds are analyzed."""
    sizes = []
    for seed in range(3):
        engine = _engine(tmp_path, seed=seed)
        engine.report()
        path = engine._cache_path(engine.stats.cache_key)
        sizes.append(os.path.getsize(path))
        # mtime-ordered eviction needs distinguishable stamps.
        stamp = time.time() - 100 + seed
        os.utime(path, (stamp, stamp))
    assert len(os.listdir(tmp_path)) == 3

    budget_mb = (max(sizes) + 1) / (1024 * 1024)
    engine = _engine(tmp_path, seed=3, max_cache_mb=budget_mb)
    engine.report()
    assert engine.stats.cache == "miss"
    assert engine.stats.cache_evictions >= 2
    survivors = os.listdir(tmp_path)
    # The just-stored entry always survives its own pruning pass.
    assert engine._cache_path(engine.stats.cache_key) in [
        os.path.join(str(tmp_path), name) for name in survivors
    ]
    total = sum(
        os.path.getsize(os.path.join(tmp_path, name))
        for name in survivors
    )
    assert total <= budget_mb * 1024 * 1024


def test_cache_hit_refreshes_lru_position(tmp_path):
    """A hit touches the entry's mtime, protecting it from eviction."""
    first = _engine(tmp_path, seed=0)
    first.report()
    first_path = first._cache_path(first.stats.cache_key)
    old = time.time() - 1000
    os.utime(first_path, (old, old))

    second = _engine(tmp_path, seed=1)
    second.report()
    second_path = second._cache_path(second.stats.cache_key)
    stale = time.time() - 500
    os.utime(second_path, (stale, stale))

    # Hit on the first entry refreshes its mtime past the second's.
    refreshed = _engine(tmp_path, seed=0)
    refreshed.report()
    assert refreshed.stats.cache == "hit"
    assert os.path.getmtime(first_path) > os.path.getmtime(second_path)

    # Now a capped store evicts the *second* entry (oldest), not the
    # recently-hit first one.  Budget holds ~2.5 entries: storing the
    # third forces exactly one eviction.
    largest = max(
        os.path.getsize(first_path), os.path.getsize(second_path)
    )
    budget_mb = 2.5 * largest / (1024 * 1024)
    capped = _engine(tmp_path, seed=2, max_cache_mb=budget_mb)
    capped.report()
    assert os.path.exists(first_path)
    assert not os.path.exists(second_path)


def test_evictions_reported_in_stats_and_format(tmp_path):
    for seed in range(2):
        engine = _engine(tmp_path, seed=seed)
        engine.report()
        path = engine._cache_path(engine.stats.cache_key)
        stamp = time.time() - 50 + seed
        os.utime(path, (stamp, stamp))
    tiny = 1.0 / 1024  # 1 KiB: evicts everything but the new entry
    report, stats = analyze_damage_cached(
        build_design("TreeFlat"),
        spec_for_network(build_design("TreeFlat"), seed=9),
        cache_dir=str(tmp_path),
        max_cache_mb=tiny,
    )
    assert stats.cache_evictions == 2
    assert "evicted" in stats.format()
    assert stats.as_dict()["cache_evictions"] == 2


def test_uncapped_engine_never_evicts(tmp_path):
    for seed in range(4):
        engine = _engine(tmp_path, seed=seed)
        engine.report()
        assert engine.stats.cache_evictions == 0
    assert len(os.listdir(tmp_path)) == 4
