"""Unit tests for explicit per-fault effect computation (Sec. IV-B)."""

import pytest

from repro.analysis import (
    control_cell_break_effect,
    effect_of_fault,
    mux_stuck_effect,
    segment_break_effect,
)
from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.errors import ReproError
from repro.sp import decompose


class TestSegmentBreak:
    def test_trunk_break_splits_before_after(self, chain_network):
        tree = decompose(chain_network)
        effect = segment_break_effect(tree, "s2")
        assert effect.unobservable == {"s1", "s2"}
        assert effect.unsettable == {"s2", "s3"}

    def test_first_segment_of_chain(self, chain_network):
        tree = decompose(chain_network)
        effect = segment_break_effect(tree, "s1")
        assert effect.unobservable == {"s1"}
        assert effect.unsettable == {"s1", "s2", "s3"}

    def test_break_isolated_inside_sib(self, sib_network):
        """Sec. IV-B.1: the effect stays inside the branch of the closest
        parental multiplexer — 'pre' outside the SIB is untouched."""
        tree = decompose(sib_network)
        effect = segment_break_effect(tree, "in1")
        assert "pre" not in effect.unobservable
        assert "pre" not in effect.unsettable
        assert effect.unsettable == {"in1", "in2"}
        assert effect.unobservable == {"in1"}

    def test_broken_segment_loses_both(self, fig1_tree):
        effect = segment_break_effect(fig1_tree, "c2")
        assert "c2" in effect.unobservable
        assert "c2" in effect.unsettable

    def test_fig1_c2_break(self, fig1_tree):
        effect = segment_break_effect(fig1_tree, "c2")
        # everything before c2 in m0's branch loses observability
        assert {"a", "b", "m1"} <= effect.unobservable
        # the sibling branch d and the outside g stay accessible
        assert "d" not in effect.unobservable
        assert "d" not in effect.unsettable
        assert "g" not in effect.unobservable

    def test_instruments_lost(self, fig1_network, fig1_tree):
        effect = segment_break_effect(fig1_tree, "c2")
        unobs, unset = effect.lost_instruments(fig1_network)
        assert unobs == {"i1", "i2", "i3"}
        assert unset == {"i3"}


class TestMuxStuck:
    def test_fig4_stuck_at_1_of_m0(self, fig1_network, fig1_tree):
        """The paper's Fig. 4: stuck-at-1 of m0 makes i1, i2 and i3
        inaccessible."""
        effect = mux_stuck_effect(fig1_tree, "m0", 1)
        unobs, unset = effect.lost_instruments(fig1_network)
        assert unobs == {"i1", "i2", "i3"}
        assert unset == {"i1", "i2", "i3"}

    def test_stuck_at_0_of_m0_kills_d(self, fig1_network, fig1_tree):
        effect = mux_stuck_effect(fig1_tree, "m0", 0)
        unobs, unset = effect.lost_instruments(fig1_network)
        assert unobs == unset == {"i4"}

    def test_dead_set_symmetric(self, fig1_tree):
        effect = mux_stuck_effect(fig1_tree, "m2", 0)
        assert effect.unobservable == effect.unsettable

    def test_sib_stuck_asserted_harmless(self, sib_network):
        """Stuck-at-asserted always grants access to the sub-network: only
        the bypass wire (no primitives) is lost."""
        tree = decompose(sib_network)
        effect = mux_stuck_effect(tree, "sib0.mux", 1)
        assert effect.unobservable == set()
        assert effect.unsettable == set()

    def test_sib_stuck_deasserted_kills_hosted(self, sib_network):
        tree = decompose(sib_network)
        effect = mux_stuck_effect(tree, "sib0.mux", 0)
        assert {"in1", "in2"} <= effect.unobservable

    def test_three_branch_mux_stuck(self, mux3_network):
        tree = decompose(mux3_network)
        effect = mux_stuck_effect(tree, "m", 1)  # bypass selected
        assert {"x", "y"} <= effect.unobservable
        effect = mux_stuck_effect(tree, "m", 0)
        assert "y" in effect.unobservable
        assert "x" not in effect.unobservable

    def test_unknown_port_rejected(self, fig1_tree):
        with pytest.raises(ReproError):
            mux_stuck_effect(fig1_tree, "m0", 7)

    def test_non_mux_rejected(self, fig1_tree):
        with pytest.raises(ReproError):
            mux_stuck_effect(fig1_tree, "c2", 0)


class TestControlCellBreak:
    def test_union_of_break_and_stuck(self, sib_network):
        tree = decompose(sib_network)
        effect = control_cell_break_effect(
            tree, "sib0.bit", {"sib0.mux": 0}
        )
        # break: hosted chain after the bit loses settability and the
        # upstream trunk loses observability (the bit sits on the trunk);
        # stuck-at-bypass additionally kills the hosted chain both ways.
        assert {"in1", "in2"} <= effect.unsettable
        assert {"in1", "in2"} <= effect.unobservable
        assert "pre" in effect.unobservable
        assert "pre" not in effect.unsettable

    def test_fault_type_preserved(self, sib_network):
        tree = decompose(sib_network)
        effect = control_cell_break_effect(tree, "sib0.bit", {})
        assert isinstance(effect.fault, ControlCellBreak)


class TestDispatch:
    def test_effect_of_fault_dispatch(self, fig1_network, fig1_tree):
        cases = [
            SegmentBreak("c2"),
            MuxStuck("m0", 1),
            ControlCellBreak("m0.sel"),
        ]
        for fault in cases:
            effect = effect_of_fault(fig1_tree, fig1_network, fault)
            assert effect.unobservable or effect.unsettable

    def test_unknown_fault_rejected(self, fig1_network, fig1_tree):
        with pytest.raises(ReproError):
            effect_of_fault(fig1_tree, fig1_network, object())


class TestFaultEffectHelpers:
    def test_damage_weighting(self, fig1_tree):
        effect = segment_break_effect(fig1_tree, "c2")
        damage = effect.damage({"c2": 5.0, "a": 2.0}, {"c2": 7.0})
        # unobservable: c2 (5) + a (2); unsettable: c2 (7)
        assert damage == 14.0

    def test_union(self, fig1_tree):
        first = segment_break_effect(fig1_tree, "c2")
        second = mux_stuck_effect(fig1_tree, "m0", 0)
        merged = first.union(second)
        assert merged.unobservable == (
            first.unobservable | second.unobservable
        )
        assert merged.unsettable == first.unsettable | second.unsettable


class TestFaultTrees:
    """The paper's observability/settability trees under a fault."""

    def test_settability_tree_drops_exactly_unsettable(
        self, fig1_network, fig1_tree
    ):
        from repro.analysis import settability_tree, segment_break_effect
        from repro.sp import SPKind

        effect = segment_break_effect(fig1_tree, "c2")
        pruned = settability_tree(fig1_tree, SegmentBreak("c2"))
        remaining = {
            leaf.primitive
            for leaf in pruned.in_order_leaves()
            if leaf.kind is SPKind.LEAF
        }
        all_primitives = {
            leaf.primitive for leaf in fig1_tree.primitive_leaves()
        }
        assert remaining == all_primitives - effect.unsettable

    def test_observability_tree_drops_exactly_unobservable(
        self, fig1_network, fig1_tree
    ):
        from repro.analysis import observability_tree, mux_stuck_effect
        from repro.sp import SPKind

        effect = mux_stuck_effect(fig1_tree, "m0", 1)
        pruned = observability_tree(fig1_tree, MuxStuck("m0", 1))
        remaining = {
            leaf.primitive
            for leaf in pruned.in_order_leaves()
            if leaf.kind is SPKind.LEAF
        }
        all_primitives = {
            leaf.primitive for leaf in fig1_tree.primitive_leaves()
        }
        assert remaining == all_primitives - effect.unobservable

    def test_pruned_tree_keeps_structure(self, fig1_tree):
        from repro.analysis import observability_tree
        from repro.sp import SPKind

        pruned = observability_tree(fig1_tree, SegmentBreak("g"))
        kinds_original = [
            n.kind
            for n in fig1_tree.root.post_order()
            if n.kind in (SPKind.SERIES, SPKind.PARALLEL)
        ]
        kinds_pruned = [
            n.kind
            for n in pruned.post_order()
            if n.kind in (SPKind.SERIES, SPKind.PARALLEL)
        ]
        assert kinds_original == kinds_pruned
