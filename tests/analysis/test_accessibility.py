"""Unit tests for accessibility reports and critical-instrument checks."""

from repro.analysis import (
    accessibility_under_single_faults,
    analyze_damage,
    verify_critical_instruments,
)
from repro.spec import CriticalitySpec, spec_for_network


class TestAccessibilityUnderSingleFaults:
    def test_unhardened_network_everything_at_risk(self, fig1_network):
        report = accessibility_under_single_faults(fig1_network)
        # every instrument has at least its own-segment break
        assert report.at_risk == set(fig1_network.instrument_names())
        assert report.safe == set()

    def test_hardening_all_units_still_leaves_segment_faults(
        self, fig1_network
    ):
        report = accessibility_under_single_faults(
            fig1_network,
            hardened_units=fig1_network.unit_names(),
        )
        # data segment breaks remain: each instrument's own segment
        assert report.at_risk == set(fig1_network.instrument_names())

    def test_hardened_sib_protects_upstream_observability(self, sib_network):
        unhardened = accessibility_under_single_faults(sib_network)
        hardened = accessibility_under_single_faults(
            sib_network, hardened_units=["sib0"]
        )
        assert hardened.at_risk_observation <= unhardened.at_risk_observation
        assert hardened.at_risk_control <= unhardened.at_risk_control

    def test_at_risk_union(self, fig1_network):
        report = accessibility_under_single_faults(fig1_network)
        assert report.at_risk == (
            report.at_risk_observation | report.at_risk_control
        )


class TestVerifyCriticalInstruments:
    def test_fault_free_critical_check_fails_without_hardening(
        self, fig1_network
    ):
        spec = CriticalitySpec(
            {"i1": (1000, 1000), "i4": (1, 1)},
            critical_observation=["i1"],
            critical_control=["i1"],
        )
        ok, offending = verify_critical_instruments(fig1_network, spec, [])
        assert not ok
        assert offending == ["i1"]

    def test_no_criticals_always_ok(self, fig1_network):
        # three equal weights: none dominates the sum of the others
        spec = CriticalitySpec(
            {"i3": (1, 1), "i4": (1, 1), "i5": (1, 1)},
        )
        ok, offending = verify_critical_instruments(fig1_network, spec, [])
        assert ok and offending == []

    def test_solution_protecting_criticals(self, fig1_network):
        """Hardened units cannot remove data-segment breaks, so the
        verification is about observation-criticals whose segment faults
        only lose settability elsewhere; construct a case where hardening
        the right mux units protects the critical instrument."""
        spec = spec_for_network(fig1_network, seed=11)
        report = analyze_damage(fig1_network, spec)
        ok_all, offending_all = verify_critical_instruments(
            fig1_network, spec, report.unit_damage.keys()
        )
        ok_none, offending_none = verify_critical_instruments(
            fig1_network, spec, []
        )
        # hardening everything can only shrink the offending set
        assert set(offending_all) <= set(offending_none)


class TestSiteFilter:
    def test_control_sites_exclude_self_faults(self, sib_network):
        report = accessibility_under_single_faults(
            sib_network, sites="control"
        )
        full = accessibility_under_single_faults(sib_network, sites="all")
        assert report.at_risk <= full.at_risk

    def test_data_and_control_cover_all(self, fig1_network):
        control = accessibility_under_single_faults(
            fig1_network, sites="control"
        )
        data = accessibility_under_single_faults(fig1_network, sites="data")
        full = accessibility_under_single_faults(fig1_network, sites="all")
        assert control.at_risk | data.at_risk == full.at_risk

    def test_unknown_filter_rejected(self, fig1_network):
        import pytest
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            accessibility_under_single_faults(fig1_network, sites="bogus")

    def test_hardening_control_units_clears_control_risk(self, sib_network):
        report = accessibility_under_single_faults(
            sib_network,
            hardened_units=sib_network.unit_names(),
            sites="control",
        )
        assert report.at_risk == set()
