"""Unit and property tests for the graph-reachability analysis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    GraphDamageAnalysis,
    analyze_damage,
    analyze_damage_graph,
)
from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.bench.generators import random_network
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, SegmentRole
from repro.sim import structural_access
from repro.spec import random_spec, uniform_spec


def bridge_network():
    """The Wheatstone-bridge RSN (not series-parallel)."""
    net = RsnNetwork("bridge")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment("sel1", role=SegmentRole.CONTROL)
    net.add_fanout("f1")
    net.add_segment("a", instrument="ia")
    net.add_segment("b", instrument="ib")
    net.add_fanout("fa")
    net.add_mux("m1", fanin=2, control_cell="sel1")
    net.add_mux("m2", fanin=2, control_cell="sel1")
    net.add_segment("tail", instrument="it")
    for edge in [
        ("scan_in", "sel1"), ("sel1", "f1"), ("f1", "a"), ("f1", "b"),
        ("a", "fa"), ("fa", "m1"), ("b", "m1"), ("m1", "m2"),
        ("fa", "m2"), ("m2", "tail"), ("tail", "scan_out"),
    ]:
        net.add_edge(*edge)
    net.register_unit(
        ControlUnit("unit.sel1", muxes=["m1", "m2"], cells=["sel1"])
    )
    net.validate()
    return net


class TestOnSeriesParallel:
    def test_matches_fast_on_fig1(self, fig1_network, fig1_spec):
        fast = analyze_damage(fig1_network, fig1_spec, method="fast")
        graph = analyze_damage(fig1_network, fig1_spec, method="graph")
        assert fast.total == pytest.approx(graph.total)
        for name in fast.primitive_damage:
            assert fast.primitive_damage[name] == pytest.approx(
                graph.primitive_damage[name]
            ), name

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=20_000))
    def test_matches_fast_on_random_networks(self, seed):
        network = elaborate(
            random_network(seed=seed, max_depth=2, max_items=3)
        )
        spec = random_spec(network.instrument_names(), seed=seed)
        fast = analyze_damage(network, spec, method="fast")
        graph = analyze_damage(network, spec, method="graph")
        for name in fast.primitive_damage:
            assert fast.primitive_damage[name] == pytest.approx(
                graph.primitive_damage[name]
            ), name


class TestOnBridge:
    def test_report_computes(self):
        network = bridge_network()
        spec = uniform_spec(network.instrument_names())
        report = analyze_damage_graph(network, spec)
        assert report.total > 0

    def test_a_has_redundant_routes(self):
        """The physical point of the bridge: 'a' reaches m2 directly AND
        through m1, so a single stuck mux never cuts it off."""
        network = bridge_network()
        spec = uniform_spec(network.instrument_names())
        analysis = GraphDamageAnalysis(network, spec)
        for mux, port in (("m1", 0), ("m1", 1), ("m2", 0), ("m2", 1)):
            effect = analysis.effect_of_fault(MuxStuck(mux, port))
            assert "a" not in effect.unobservable, (mux, port)

    def test_b_killed_by_either_mux(self):
        network = bridge_network()
        spec = uniform_spec(network.instrument_names())
        analysis = GraphDamageAnalysis(network, spec)
        effect = analysis.effect_of_fault(MuxStuck("m1", 0))
        assert "b" in effect.unobservable
        assert "b" in effect.unsettable

    def test_matches_oracle_for_every_fault(self):
        network = bridge_network()
        spec = uniform_spec(network.instrument_names())
        analysis = GraphDamageAnalysis(network, spec)
        instruments = set(network.instrument_names())
        faults = [
            SegmentBreak("a"),
            SegmentBreak("b"),
            SegmentBreak("tail"),
            MuxStuck("m1", 0),
            MuxStuck("m1", 1),
            MuxStuck("m2", 0),
            MuxStuck("m2", 1),
        ]
        for fault in faults:
            effect = analysis.effect_of_fault(fault)
            unobs, unset = effect.lost_instruments(network)
            access = structural_access(network, faults=[fault])
            assert instruments - access.observable == unobs, fault
            assert instruments - access.settable == unset, fault

    def test_cell_break_matches_oracle(self):
        network = bridge_network()
        spec = uniform_spec(network.instrument_names())
        analysis = GraphDamageAnalysis(network, spec)
        fault = ControlCellBreak("sel1")
        effect = analysis.effect_of_fault(fault)
        unobs, unset = effect.lost_instruments(network)
        access = structural_access(
            network,
            faults=[fault],
            assumed_ports=analysis.cell_stuck_ports("sel1"),
        )
        instruments = set(network.instrument_names())
        assert instruments - access.observable <= unobs
        assert instruments - access.settable <= unset


class TestNonSpPipeline:
    def test_selective_hardening_falls_back(self):
        from repro.core import SelectiveHardening

        network = bridge_network()
        synthesis = SelectiveHardening(network, seed=0)
        assert synthesis.tree is None
        result = synthesis.optimize(generations=30, population_size=16)
        assert len(result.objectives) >= 1

    def test_virtualized_tree_is_structural_only(self):
        from repro.analysis.effects import segment_break_effect
        from repro.errors import ReproError
        from repro.sp import decompose

        network = bridge_network()
        tree = decompose(network, virtualize=True)
        assert tree.is_virtualized
        assert len(tree.leaves_of("a")) >= 2
        with pytest.raises(ReproError):
            segment_break_effect(tree, "a")

    def test_virtualized_leaves_cover_all_primitives(self):
        from repro.sp import decompose

        network = bridge_network()
        tree = decompose(network, virtualize=True)
        canonical = {
            tree.canonical_name(leaf.primitive)
            for leaf in tree.primitive_leaves()
        }
        from repro.rsn.primitives import NodeKind

        expected = {
            node.name
            for node in network.nodes()
            if node.kind in (NodeKind.SEGMENT, NodeKind.MUX)
        }
        assert canonical == expected

    def test_duplication_budget_enforced(self):
        from repro.errors import NotSeriesParallelError
        from repro.sp import decompose

        network = bridge_network()
        with pytest.raises(NotSeriesParallelError):
            decompose(network, virtualize=True, max_duplications=0)


class TestVirtualizedTreeGuards:
    def test_fast_analysis_rejects_virtualized_tree(self):
        from repro.analysis.damage import FastDamageAnalysis
        from repro.errors import ReproError
        from repro.sp import decompose
        from repro.spec import uniform_spec

        network = bridge_network()
        tree = decompose(network, virtualize=True)
        spec = uniform_spec(network.instrument_names())
        with pytest.raises(ReproError):
            FastDamageAnalysis(network, spec, tree=tree)

    def test_mux_stuck_effect_rejects_virtualized_tree(self):
        from repro.analysis.effects import mux_stuck_effect
        from repro.errors import ReproError
        from repro.sp import decompose

        network = bridge_network()
        tree = decompose(network, virtualize=True)
        with pytest.raises(ReproError):
            mux_stuck_effect(tree, "m1", 0)
