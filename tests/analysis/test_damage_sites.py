"""Unit tests for the Eq. 2 damage-site accounting variants."""

import pytest

from repro.analysis import analyze_damage
from repro.core import SelectiveHardening
from repro.errors import ReproError
from repro.spec import spec_for_network


@pytest.fixture
def setup(fig1_network):
    spec = spec_for_network(fig1_network, seed=5)
    return fig1_network, spec


class TestSiteAccounting:
    def test_all_is_default_and_largest(self, setup):
        network, spec = setup
        full = analyze_damage(network, spec)
        control = analyze_damage(network, spec, sites="control")
        mux_only = analyze_damage(network, spec, sites="mux")
        assert full.total >= control.total >= mux_only.total
        assert mux_only.total > 0

    def test_control_zeroes_data_segments(self, setup):
        network, spec = setup
        report = analyze_damage(network, spec, sites="control")
        for segment in network.data_segments():
            assert report.primitive_damage[segment.name] == 0.0
        # control cells keep their damage
        cells = [s.name for s in network.control_segments()]
        assert any(report.primitive_damage[c] > 0 for c in cells)

    def test_mux_zeroes_every_segment(self, setup):
        network, spec = setup
        report = analyze_damage(network, spec, sites="mux")
        for segment in network.segments():
            assert report.primitive_damage[segment.name] == 0.0
        muxes = [m.name for m in network.muxes()]
        assert all(report.primitive_damage[m] > 0 for m in muxes)

    def test_mux_damage_identical_across_modes(self, setup):
        network, spec = setup
        full = analyze_damage(network, spec)
        mux_only = analyze_damage(network, spec, sites="mux")
        for mux in network.muxes():
            assert full.primitive_damage[mux.name] == pytest.approx(
                mux_only.primitive_damage[mux.name]
            )

    def test_unknown_site_filter_rejected(self, setup):
        network, spec = setup
        with pytest.raises(ReproError):
            analyze_damage(network, spec, sites="bogus")

    def test_graph_method_supports_sites(self, setup):
        network, spec = setup
        tree_based = analyze_damage(network, spec, sites="mux")
        graph_based = analyze_damage(
            network, spec, method="graph", sites="mux"
        )
        assert tree_based.total == pytest.approx(graph_based.total)


class TestSynthesisIntegration:
    def test_damage_sites_flows_through(self, setup):
        network, spec = setup
        full = SelectiveHardening(network, spec=spec, seed=0)
        narrow = SelectiveHardening(
            network,
            spec=spec,
            seed=0,
            hardenable="control",
            damage_sites="mux",
        )
        assert narrow.max_damage < full.max_damage
        result = narrow.optimize(generations=30, population_size=16)
        assert len(result.objectives) >= 1

    def test_mux_accounting_floor_is_zero_with_control_hardening(
        self, setup
    ):
        network, spec = setup
        narrow = SelectiveHardening(
            network,
            spec=spec,
            seed=0,
            hardenable="control",
            damage_sites="mux",
        )
        # every counted fault sits in a mux, and every mux belongs to a
        # hardenable unit -> hardening everything removes all damage
        assert narrow.problem.floor_damage == pytest.approx(0.0)


class TestCliFlags:
    def test_table1_damage_sites_flag(self, tmp_path, capsys):
        from repro.cli import main

        json_path = tmp_path / "rows.json"
        code = main(
            [
                "table1",
                "--designs",
                "TreeFlat",
                "--scale-generations",
                "0.05",
                "--damage-sites",
                "mux",
                "--hardenable",
                "control",
                "--json",
                str(json_path),
            ]
        )
        assert code == 0
        import json

        rows = json.loads(json_path.read_text())
        assert rows[0]["max_damage"] > 0
