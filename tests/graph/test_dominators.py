"""Unit tests for dominator / post-dominator relations."""

from repro.graph import (
    dominates,
    immediate_dominators,
    immediate_post_dominators,
    post_dominates,
)


class TestDominators:
    def test_scan_in_dominates_everything(self, fig1_network):
        for name in fig1_network.node_names():
            assert dominates(fig1_network, fig1_network.scan_in, name)

    def test_scan_out_post_dominates_everything(self, fig1_network):
        for name in fig1_network.node_names():
            assert post_dominates(fig1_network, fig1_network.scan_out, name)

    def test_paper_fact_m0_dominates_c2(self, fig1_network):
        """Sec. III: all paths through c2 traverse m0 — in graph terms m0
        post-dominates c2 (c2's data must pass m0 to reach scan-out)."""
        assert post_dominates(fig1_network, "m0", "c2")

    def test_paper_fact_m2_dominates_m1(self, fig1_network):
        assert post_dominates(fig1_network, "m2", "m1")
        assert post_dominates(fig1_network, "m0", "m1")

    def test_branch_does_not_dominate_sibling(self, fig1_network):
        assert not dominates(fig1_network, "a", "b")
        assert not post_dominates(fig1_network, "a", "b")
        assert not post_dominates(fig1_network, "m1", "d")

    def test_self_domination(self, fig1_network):
        assert dominates(fig1_network, "c2", "c2")
        assert post_dominates(fig1_network, "c2", "c2")

    def test_chain_dominators_are_linear(self, chain_network):
        idom = immediate_dominators(chain_network)
        assert idom["s2"] == "s1"
        assert idom["s3"] == "s2"

    def test_chain_post_dominators_are_linear(self, chain_network):
        ipdom = immediate_post_dominators(chain_network)
        assert ipdom["s1"] == "s2"
        assert ipdom["s2"] == "s3"

    def test_immediate_post_dominator_of_fanout_is_closing_mux(
        self, sib_network
    ):
        ipdom = immediate_post_dominators(sib_network)
        fanouts = [
            name
            for name in sib_network.node_names()
            if len(sib_network.successors(name)) > 1
        ]
        assert len(fanouts) == 1
        assert ipdom[fanouts[0]] == "sib0.mux"
