"""Unit tests for stems, reconvergence gates and stem regions."""

from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.graph import (
    closing_reconvergence,
    fanout_stems,
    reconvergence_gates,
    stem_region,
)
from repro.graph.reconvergence import closing_reconvergence_fast
from repro.rsn.ast import elaborate


class TestFanoutStems:
    def test_chain_has_no_stems(self, chain_network):
        assert fanout_stems(chain_network) == []

    def test_fig1_has_three_stems(self, fig1_network):
        assert len(fanout_stems(fig1_network)) == 3

    def test_stems_have_multiple_successors(self, fig1_network):
        for stem in fanout_stems(fig1_network):
            assert len(fig1_network.successors(stem)) > 1


class TestReconvergenceGates:
    def test_innermost_stem_reconverges_at_m1(self, fig1_network):
        stems = fanout_stems(fig1_network)
        gates = {stem: reconvergence_gates(fig1_network, stem) for stem in stems}
        # exactly one stem has m1 as its (only) gate
        m1_stems = [s for s, g in gates.items() if g == ["m1"]]
        assert len(m1_stems) == 1

    def test_gates_are_muxes(self, fig1_network):
        from repro.rsn.primitives import NodeKind

        for stem in fanout_stems(fig1_network):
            for gate in reconvergence_gates(fig1_network, stem):
                assert fig1_network.node(gate).kind is NodeKind.MUX

    def test_non_stem_has_no_gates(self, fig1_network):
        assert reconvergence_gates(fig1_network, "c2") == []


class TestClosingReconvergence:
    def test_sib_stem_closes_at_its_mux(self, sib_network):
        stem = fanout_stems(sib_network)[0]
        assert closing_reconvergence(sib_network, stem) == "sib0.mux"

    def test_single_gate_is_closing(self, fig1_network):
        for stem in fanout_stems(fig1_network):
            gates = reconvergence_gates(fig1_network, stem)
            closing = closing_reconvergence(fig1_network, stem)
            assert closing in gates

    def test_chain_segment_has_none(self, chain_network):
        assert closing_reconvergence(chain_network, "s1") is None

    def test_fast_variant_agrees(self, fig1_network):
        for stem in fanout_stems(fig1_network):
            assert closing_reconvergence_fast(
                fig1_network, stem
            ) == closing_reconvergence(fig1_network, stem)


class TestStemRegion:
    def test_region_contains_both_branches(self, sib_network):
        stem = fanout_stems(sib_network)[0]
        region = stem_region(sib_network, stem)
        assert {"in1", "in2", "sib0.mux"} <= region
        assert "pre" not in region

    def test_region_of_non_stem_is_empty(self, chain_network):
        assert stem_region(chain_network, "s2") == set()

    def test_region_excludes_stem_itself(self, fig1_network):
        for stem in fanout_stems(fig1_network):
            assert stem not in stem_region(fig1_network, stem)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=5_000))
def test_fast_and_flow_closing_agree_on_sp_networks(seed):
    """On SP networks, the post-dominator shortcut equals the flow-based
    closing reconvergence for every fan-out stem."""
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    for stem in fanout_stems(network):
        assert closing_reconvergence_fast(
            network, stem
        ) == closing_reconvergence(network, stem)
