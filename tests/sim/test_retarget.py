"""Unit tests for pattern retargeting on the simulator."""

import pytest

from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.errors import RetargetingError
from repro.sim import Retargeter, ScanSimulator


def retargeter(network, faults=(), assumed_ports=None):
    return Retargeter(
        ScanSimulator(network, faults=faults, assumed_ports=assumed_ports)
    )


class TestPlanning:
    def test_plan_passes_through_target(self, fig1_network):
        plan = retargeter(fig1_network).plan_path("d")
        assert plan[0] == "scan_in"
        assert plan[-1] == "scan_out"
        assert "d" in plan

    def test_required_selects_for_deep_target(self, fig1_network):
        rt = retargeter(fig1_network)
        plan = rt.plan_path("bseg" if "bseg" in fig1_network else "b")
        selects = rt.required_selects(plan)
        assert selects["m1"] == 1  # b is on port 1 of m1
        assert selects["m0"] == 0
        assert selects["m2"] == 0

    def test_plan_avoids_broken_segments(self, fig1_network):
        rt = retargeter(fig1_network, faults=[SegmentBreak("c2")])
        # c2 is broken: no path through the m0 port-0 branch; i4 still fine
        plan = rt.plan_path("d")
        assert "c2" not in plan
        with pytest.raises(RetargetingError):
            rt.plan_path("a")

    def test_plan_respects_stuck_mux(self, fig1_network):
        rt = retargeter(fig1_network, faults=[MuxStuck("m0", 1)])
        with pytest.raises(RetargetingError):
            rt.plan_path("a")
        plan = rt.plan_path("d")
        assert "d" in plan

    def test_required_selects_conflict_with_stuck(self, fig1_network):
        rt = retargeter(fig1_network)
        plan = rt.plan_path("a")
        rt.simulator.stuck["m0"] = 1  # force a conflict after planning
        with pytest.raises(RetargetingError):
            rt.required_selects(plan)


class TestAccessExecution:
    def test_write_read_roundtrip(self, fig1_network):
        rt = retargeter(fig1_network)
        rt.write_instrument("i2", [1, 0, 1])
        assert rt.read_instrument("i2") == [1, 0, 1]

    def test_sib_opens_in_one_cycle(self, sib_network):
        rt = retargeter(sib_network)
        cycles = rt.bring_onto_path("in1")
        assert cycles == 1

    def test_nested_sibs_open_level_by_level(self, nested_sib_network):
        rt = retargeter(nested_sib_network)
        cycles = rt.bring_onto_path("deep1")
        assert cycles == 2  # one CSU per SIB level

    def test_target_already_on_path_is_free(self, chain_network):
        rt = retargeter(chain_network)
        assert rt.bring_onto_path("s2") == 0

    def test_write_verifies_payload(self, fig1_network):
        rt = retargeter(fig1_network)
        cycles = rt.write_instrument("i4", [1, 1, 0, 1])
        assert cycles >= 1
        assert rt.simulator.register("d") == (1, 1, 0, 1)

    def test_write_through_upstream_break_fails(self, chain_network):
        rt = retargeter(chain_network, faults=[SegmentBreak("s1")])
        with pytest.raises(RetargetingError):
            rt.write_instrument("b", [1, 0, 1])

    def test_read_through_downstream_break_fails(self, chain_network):
        rt = retargeter(chain_network, faults=[SegmentBreak("s3")])
        with pytest.raises(RetargetingError):
            rt.read_instrument("a")

    def test_read_upstream_of_target_break_ok(self, chain_network):
        # break in s1 (upstream): s3 remains observable
        rt = retargeter(chain_network, faults=[SegmentBreak("s1")])
        assert rt.read_instrument("c") == [0]

    def test_stuck_asserted_sib_still_reaches_hosted(self, sib_network):
        rt = retargeter(sib_network, faults=[MuxStuck("sib0.mux", 1)])
        rt.write_instrument("first", [1, 0])
        assert rt.read_instrument("first") == [1, 0]

    def test_stuck_deasserted_sib_blocks_hosted(self, sib_network):
        rt = retargeter(sib_network, faults=[MuxStuck("sib0.mux", 0)])
        with pytest.raises(RetargetingError):
            rt.bring_onto_path("in1")

    def test_broken_sib_bit_blocks_strictly(self, sib_network):
        """Strict sequential semantics: a broken SIB bit cuts off the
        hosted chain even if an optimistic analysis would pin the mux
        asserted."""
        rt = retargeter(
            sib_network,
            faults=[ControlCellBreak("sib0.bit")],
            assumed_ports={"sib0.mux": 0},
        )
        with pytest.raises(RetargetingError):
            rt.read_instrument("first")
