"""Property-based tests of the scan simulator and retargeter."""

from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.rsn.ast import elaborate
from repro.sim import Retargeter, ScanSimulator

seeds = st.integers(min_value=0, max_value=20_000)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_active_path_well_formed(seed):
    """The reset-state active path runs scan-in -> scan-out and respects
    every mux's selected port."""
    network = elaborate(random_network(seed=seed))
    simulator = ScanSimulator(network)
    path = simulator.active_path()
    assert path[0] == network.scan_in
    assert path[-1] == network.scan_out
    for src, dst in zip(path, path[1:]):
        node = network.node(dst)
        if node.kind.value == "mux":
            port = simulator.select_of(dst)
            assert network.predecessors(dst)[port] == src
        else:
            assert src in network.predecessors(dst)


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_shift_is_a_rotation_free_pipeline(seed):
    """Shifting path-length zeros through a zero-initialized path returns
    all zeros; shifting a pattern through twice returns the pattern."""
    network = elaborate(random_network(seed=seed))
    simulator = ScanSimulator(network)
    length = simulator.path_length()
    if length == 0:
        return
    pattern = [(k * 7 + 3) % 2 for k in range(length)]
    first_out = simulator.shift(pattern)
    assert first_out == [0] * length
    # the scan path is a FIFO: shifting length more cycles returns the
    # pattern in its original order
    second_out = simulator.shift([0] * length)
    assert second_out == pattern


@settings(max_examples=30, deadline=None)
@given(seed=seeds)
def test_scan_cycle_reads_what_it_wrote(seed):
    """A scan cycle writing every on-path segment is read back verbatim by
    the next cycle."""
    network = elaborate(random_network(seed=seed))
    simulator = ScanSimulator(network)
    writes = {}
    for index, segment in enumerate(simulator.active_segments()):
        writes[segment.name] = [
            (index + k) % 2 for k in range(segment.length)
        ]
    simulator.scan_cycle(writes)
    # select cells may have re-routed the path; read back only segments
    # still on it
    still_active = {s.name for s in simulator.active_segments()}
    observed = simulator.scan_cycle()
    for name, bits in writes.items():
        if name in still_active:
            assert observed[name] == bits


@settings(max_examples=25, deadline=None)
@given(seed=seeds)
def test_every_instrument_retargetable_when_fault_free(seed):
    """Paper Sec. VI: in the defect-free case all instruments are
    accessible — via real CSU sequences, not just structurally."""
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    for instrument in network.instrument_names():
        simulator = ScanSimulator(network)
        retargeter = Retargeter(simulator)
        segment = network.instrument(instrument).segment
        width = network.node(segment).length
        pattern = [k % 2 for k in range(width)]
        retargeter.write_instrument(instrument, pattern)
        assert retargeter.read_instrument(instrument) == pattern


@settings(max_examples=20, deadline=None)
@given(seed=seeds, victim=st.integers(min_value=0, max_value=1_000_000))
def test_strict_subset_of_structural_under_mux_stuck(seed, victim):
    """For any single stuck mux, the sequential oracle never reports more
    access than the structural one."""
    from repro.analysis.faults import MuxStuck
    from repro.sim import strict_access, structural_access

    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    muxes = [mux.name for mux in network.muxes()]
    if not muxes:
        return
    mux = muxes[victim % len(muxes)]
    port = victim % network.node(mux).fanin
    fault = [MuxStuck(mux, port)]
    strict = strict_access(network, faults=fault)
    structural = structural_access(network, faults=fault)
    assert strict.observable <= structural.observable
    assert strict.settable <= structural.settable


@settings(max_examples=25, deadline=None)
@given(
    seed=seeds,
    n_extra=st.integers(min_value=0, max_value=9),
)
def test_fast_shift_equals_percycle_shift(seed, n_extra):
    """The flat-FIFO fast path must be bit-identical to the per-cycle
    reference implementation."""
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    fast = ScanSimulator(network)
    slow = ScanSimulator(network)
    length = fast.path_length() + n_extra
    pattern = [(k * 5 + 1) % 2 for k in range(length)]
    out_fast = fast.shift(pattern)
    out_slow = slow._shift_slow_reference(pattern)
    assert out_fast == out_slow
    for segment in fast.active_segments():
        assert fast.register(segment.name) == slow.register(segment.name)


@settings(max_examples=25, deadline=None)
@given(
    seed=seeds,
    victim=st.integers(min_value=0, max_value=1_000_000),
    n_extra=st.integers(min_value=0, max_value=5),
)
def test_run_split_shift_equals_percycle_with_breaks(seed, victim, n_extra):
    """The run-splitting fast path must match the per-cycle reference when
    broken segments sit on the active path."""
    from repro.analysis.faults import SegmentBreak

    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    segments = [seg.name for seg in network.segments()]
    broken = segments[victim % len(segments)]
    fault = [SegmentBreak(broken)]
    fast = ScanSimulator(network, faults=fault)
    slow = ScanSimulator(network, faults=fault)
    length = fast.path_length() + n_extra
    pattern = [(k * 3 + 1) % 2 for k in range(length)]
    assert fast.shift(pattern) == slow._shift_slow_reference(pattern)
    for segment in fast.active_segments():
        assert fast.register(segment.name) == slow.register(segment.name)
