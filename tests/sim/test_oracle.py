"""Unit tests for the structural and strict accessibility oracles."""

import pytest

from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.errors import SimulationError
from repro.sim import strict_access, structural_access


class TestStructuralAccess:
    def test_fault_free_all_accessible(self, fig1_network):
        access = structural_access(fig1_network)
        everything = set(fig1_network.instrument_names())
        assert access.observable == everything
        assert access.settable == everything

    def test_fig4_stuck(self, fig1_network):
        access = structural_access(fig1_network, faults=[MuxStuck("m0", 1)])
        assert access.observable == {"i4", "i5"}
        assert access.settable == {"i4", "i5"}

    def test_break_asymmetric(self, fig1_network):
        access = structural_access(fig1_network, faults=[SegmentBreak("c2")])
        assert access.observable == {"i4", "i5"}
        assert access.settable == {"i1", "i2", "i4", "i5"}

    def test_cell_break_uses_assumed_ports(self, fig1_network):
        pinned_bad = structural_access(
            fig1_network,
            faults=[ControlCellBreak("m0.sel")],
            assumed_ports={"m0": 1},
        )
        pinned_good = structural_access(
            fig1_network,
            faults=[ControlCellBreak("m0.sel")],
            assumed_ports={"m0": 0},
        )
        assert "i1" not in pinned_bad.observable
        # pinned at port 0 the m0 branch stays selected, but the broken
        # cell still breaks the chain inside the branch
        assert "i4" not in pinned_good.observable

    def test_config_explosion_guarded(self):
        from repro.rsn import RsnBuilder

        builder = RsnBuilder("wide")
        for index in range(8):
            with builder.mux(f"m{index}") as mux:
                with mux.branch():
                    builder.segment(f"s{index}", instrument=True)
                with mux.branch():
                    pass
        network = builder.build()
        with pytest.raises(SimulationError):
            structural_access(network, max_configs=100)

    def test_multiple_faults_compose(self, fig1_network):
        access = structural_access(
            fig1_network,
            faults=[MuxStuck("m0", 1), SegmentBreak("g")],
        )
        assert access.observable == {"i4"}
        # g itself is broken, so i5 is neither settable nor observable
        assert access.settable == {"i4"}


class TestStrictAccess:
    def test_fault_free_matches_structural(self, fig1_network):
        strict = strict_access(fig1_network)
        structural = structural_access(fig1_network)
        assert strict.observable == structural.observable
        assert strict.settable == structural.settable

    def test_stuck_mux_matches_structural(self, fig1_network):
        fault = [MuxStuck("m0", 1)]
        strict = strict_access(fig1_network, faults=fault)
        structural = structural_access(fig1_network, faults=fault)
        assert strict.observable == structural.observable
        assert strict.settable == structural.settable

    def test_strict_is_never_more_permissive(self, sib_network):
        """The sequential oracle can only lose accesses relative to the
        optimistic structural one."""
        for faults, assumed in (
            ([SegmentBreak("in1")], None),
            ([MuxStuck("sib0.mux", 0)], None),
            ([ControlCellBreak("sib0.bit")], {"sib0.mux": 1}),
        ):
            strict = strict_access(
                sib_network, faults=faults, assumed_ports=assumed
            )
            structural = structural_access(
                sib_network, faults=faults, assumed_ports=assumed
            )
            assert strict.observable <= structural.observable
            assert strict.settable <= structural.settable

    def test_strict_detects_control_cutoff(self, nested_sib_network):
        """The showcase difference (second-order effect the static model
        ignores by design): the outer SIB bit is broken but pinned
        *asserted*, so structurally the deep instruments stay observable —
        yet the inner SIB bit can no longer be written through the break,
        so no real CSU sequence ever opens the inner sub-network."""
        faults = [ControlCellBreak("outer.bit")]
        assumed = {"outer.mux": 1}
        structural = structural_access(
            nested_sib_network, faults=faults, assumed_ports=assumed
        )
        strict = strict_access(
            nested_sib_network, faults=faults, assumed_ports=assumed
        )
        assert "i_deep1" in structural.observable
        assert "i_deep1" not in strict.observable
        assert strict.observable < structural.observable
        assert strict.settable <= structural.settable
