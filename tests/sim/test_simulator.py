"""Unit tests for the capture-shift-update scan simulator."""

import pytest

from repro.analysis.faults import ControlCellBreak, MuxStuck, SegmentBreak
from repro.errors import SimulationError
from repro.sim import ScanSimulator


class TestActivePath:
    def test_default_path_takes_port_zero(self, fig1_network):
        sim = ScanSimulator(fig1_network)
        path = sim.active_path()
        assert path[0] == "scan_in"
        assert path[-1] == "scan_out"
        # every mux resets to port 0 -> the innermost branch a is active
        assert "a" in path
        assert "d" not in path

    def test_path_follows_updated_selects(self, fig1_network):
        sim = ScanSimulator(fig1_network)
        sim.poke("m0.sel", [1])
        sim.update()
        assert "d" in sim.active_path()
        assert "a" not in sim.active_path()

    def test_update_only_affects_cells_on_path(self, fig1_network):
        sim = ScanSimulator(fig1_network)
        # m2 select flips the path away from the m0 subtree
        sim.poke("m2.sel", [1])
        sim.update()
        assert "g" in sim.active_path()
        # m0.sel no longer on path: poking its shift register and updating
        # must not change its update value
        sim.poke("m0.sel", [1])
        sim.update()
        assert sim.select_of("m0") == 0

    def test_sib_default_bypassed(self, sib_network):
        sim = ScanSimulator(sib_network)
        path = sim.active_path()
        assert "in1" not in path
        assert "sib0.bit" in path

    def test_sib_opens_with_bit(self, sib_network):
        sim = ScanSimulator(sib_network)
        sim.poke("sib0.bit", [1])
        sim.update()
        assert "in1" in sim.active_path()

    def test_path_length(self, sib_network):
        sim = ScanSimulator(sib_network)
        closed = sim.path_length()  # pre(2) + bit(1)
        sim.poke("sib0.bit", [1])
        sim.update()
        assert closed == 3
        assert sim.path_length() == 3 + 2 + 3  # + in1 + in2


class TestShift:
    def test_shift_through_chain(self, chain_network):
        sim = ScanSimulator(chain_network)
        total = sim.path_length()
        pattern = [1, 1, 0, 1, 0, 0]
        assert len(pattern) == total
        out = sim.shift(pattern)
        assert out == [0] * total  # initial zeros come out
        # FIFO: the pattern re-emerges in its original order
        out = sim.shift([0] * total)
        assert out == pattern

    def test_shift_preserves_length(self, fig1_network):
        sim = ScanSimulator(fig1_network)
        assert len(sim.shift([1, 0, 1])) == 3

    def test_registers_after_shift(self, chain_network):
        sim = ScanSimulator(chain_network)
        sim.shift([1, 1, 1, 1, 1, 1])
        assert sim.register("s1") == (1, 1)
        assert sim.register("s2") == (1, 1, 1)


class TestScanCycle:
    def test_write_lands_in_target(self, chain_network):
        sim = ScanSimulator(chain_network)
        sim.scan_cycle({"s2": [1, 0, 1]})
        assert sim.register("s2") == (1, 0, 1)

    def test_unnamed_segments_keep_contents(self, chain_network):
        sim = ScanSimulator(chain_network)
        sim.poke("s1", [1, 1])
        sim.scan_cycle({"s3": [1]})
        assert sim.register("s1") == (1, 1)

    def test_returns_previous_contents(self, chain_network):
        sim = ScanSimulator(chain_network)
        sim.poke("s2", [1, 0, 1])
        observed = sim.scan_cycle()
        assert observed["s2"] == [1, 0, 1]

    def test_write_off_path_rejected(self, sib_network):
        sim = ScanSimulator(sib_network)
        with pytest.raises(SimulationError):
            sim.scan_cycle({"in1": [0, 0]})

    def test_wrong_width_rejected(self, chain_network):
        sim = ScanSimulator(chain_network)
        with pytest.raises(SimulationError):
            sim.scan_cycle({"s2": [1]})

    def test_cycle_updates_configuration(self, sib_network):
        sim = ScanSimulator(sib_network)
        sim.scan_cycle({"sib0.bit": [1]})
        assert "in1" in sim.active_path()


class TestCapture:
    def test_capture_loads_instrument_response(self, chain_network):
        sim = ScanSimulator(chain_network)
        sim.capture({"b": [1, 1, 0]})
        assert sim.register("s2") == (1, 1, 0)

    def test_capture_wrong_width_rejected(self, chain_network):
        sim = ScanSimulator(chain_network)
        with pytest.raises(SimulationError):
            sim.capture({"b": [1]})

    def test_capture_off_path_rejected(self, sib_network):
        sim = ScanSimulator(sib_network)
        with pytest.raises(SimulationError):
            sim.capture({"first": [0, 0]})


class TestFaultInjection:
    def test_broken_segment_emits_unknown(self, chain_network):
        sim = ScanSimulator(chain_network, faults=[SegmentBreak("s2")])
        out = sim.shift([1] * 6)
        # everything behind the break comes out as None eventually
        assert None in out
        assert sim.register("s2") == (None, None, None)

    def test_downstream_of_break_initially_intact(self, chain_network):
        sim = ScanSimulator(chain_network, faults=[SegmentBreak("s1")])
        out = sim.shift([1])
        # the first bit out is s3's old content, unaffected yet
        assert out == [0]

    def test_stuck_mux_ignores_cell(self, fig1_network):
        sim = ScanSimulator(fig1_network, faults=[MuxStuck("m0", 1)])
        assert sim.select_of("m0") == 1
        sim.poke("m0.sel", [0])
        sim.update()
        assert sim.select_of("m0") == 1
        assert "d" in sim.active_path()

    def test_cell_break_pins_muxes(self, fig1_network):
        sim = ScanSimulator(
            fig1_network,
            faults=[ControlCellBreak("m0.sel")],
            assumed_ports={"m0": 1},
        )
        assert sim.select_of("m0") == 1
        assert sim.register("m0.sel") == (None,)

    def test_unknown_fault_type_rejected(self, fig1_network):
        with pytest.raises(SimulationError):
            ScanSimulator(fig1_network, faults=[object()])

    def test_poke_on_broken_segment_ignored(self, chain_network):
        sim = ScanSimulator(chain_network, faults=[SegmentBreak("s2")])
        sim.poke("s2", [1, 1, 1])
        assert sim.register("s2") == (None, None, None)

    def test_update_through_break_yields_unknown_select(self, fig1_network):
        sim = ScanSimulator(fig1_network, faults=[SegmentBreak("m2.sel")])
        # m2.sel broken: its select defaults to port 0
        assert sim.select_of("m2") == 0
