"""Smoke tests: the shipped examples run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart_runs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "criticality analysis" in result.stdout
    assert "SPEA-2 front" in result.stdout
    assert "simulator cross-check" in result.stdout


def test_tradeoff_exploration_runs(tmp_path):
    out_csv = tmp_path / "points.csv"
    result = run_example("tradeoff_exploration.py", "TreeFlat", str(out_csv))
    assert result.returncode == 0, result.stderr
    assert out_csv.exists()
    header = out_csv.read_text().splitlines()[0]
    assert header == "source,cost,damage"


def test_tradeoff_rejects_unknown_design(tmp_path):
    result = run_example("tradeoff_exploration.py", "NoSuchDesign")
    assert result.returncode != 0
    assert "unknown design" in result.stderr


def test_runtime_avfs_runs():
    result = run_example("runtime_avfs_hardening.py")
    assert result.returncode == 0, result.stderr
    assert "SYSTEM SAFE" in result.stdout


@pytest.mark.slow
def test_post_silicon_validation_runs():
    result = run_example("post_silicon_validation.py", timeout=900)
    assert result.returncode == 0, result.stderr
    assert "validation read-out under the defect" in result.stdout


def test_batch_access_runs():
    result = run_example("batch_access.py", "TreeFlat")
    assert result.returncode == 0, result.stderr
    assert "data integrity" in result.stdout
    assert "saved" in result.stdout
