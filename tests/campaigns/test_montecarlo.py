"""Monte-Carlo campaign tests: scalar seed-for-seed parity, vectorized
determinism, block-size invariance and checkpoint/resume bit-identity.

Every equality here is exact (``==``, never approx): the campaign's
per-rate mean must be bit-identical to the pre-campaign scalar loop,
and a resumed campaign must reproduce an uninterrupted one.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.faults import faults_of_primitive
from repro.analysis.graph_analysis import (
    GraphDamageAnalysis,
    expected_damage_under_rate,
)
from repro.bench import build_design
from repro.bench.generators import random_network
from repro.campaigns import MonteCarloPlan, run_monte_carlo
from repro.errors import ReproError
from repro.rsn.ast import elaborate
from repro.rsn.primitives import NodeKind
from repro.spec import random_spec, spec_for_network

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _old_expected_damage(network, spec, rate, samples, seed, backend):
    """The pre-campaign implementation, preserved verbatim as the
    seed-for-seed oracle."""
    analysis = GraphDamageAnalysis(network, spec, backend=backend)
    sites = [
        node.name
        for node in network.nodes()
        if node.kind in (NodeKind.SEGMENT, NodeKind.MUX)
    ]
    rng = random.Random(seed)
    fault_sets = []
    for _ in range(samples):
        faults = []
        for site in sites:
            if rng.random() < rate:
                candidates = faults_of_primitive(network, site)
                if candidates:
                    faults.append(rng.choice(candidates))
        if faults:
            fault_sets.append(faults)
    if not fault_sets:
        return 0.0
    return sum(analysis.damage_of_fault_sets(fault_sets)) / samples


class TestScalarParity:
    @settings(deadline=None, max_examples=15)
    @given(seed=seeds, rate_seed=st.integers(0, 10_000))
    def test_seed_for_seed_equivalence(self, seed, rate_seed):
        network, spec = _build(seed)
        rate = random.Random(rate_seed).choice([0.005, 0.02, 0.1, 0.5])
        old = _old_expected_damage(
            network, spec, rate, samples=40, seed=rate_seed, backend="bitset"
        )
        new = expected_damage_under_rate(
            network, spec, rate, samples=40, seed=rate_seed
        )
        assert new == old

    def test_equivalence_on_design(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        for rate, seed in ((0.01, 0), (0.05, 3), (0.2, 7)):
            old = _old_expected_damage(
                network, spec, rate, samples=60, seed=seed, backend="bitset"
            )
            new = expected_damage_under_rate(
                network, spec, rate, samples=60, seed=seed
            )
            assert new == old

    def test_scalar_mean_invariant_under_block_size(self):
        """The scalar stream is blocking-independent: 63/64/65-lane
        blocks slice the same materialized sample list."""
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        results = []
        for block_lanes in (63, 64, 65, None):
            plan = MonteCarloPlan(
                rates=(0.05,),
                samples=130,
                seed=2,
                sampler="scalar",
                bootstrap=0,
                block_lanes=block_lanes,
            )
            record = run_monte_carlo(analysis, plan)["records"][0]
            results.append(record["mean_damage"])
        assert len(set(results)) == 1

    def test_rate_validation_message_preserved(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        with pytest.raises(ReproError, match=r"within \[0, 1\]"):
            expected_damage_under_rate(network, spec, 1.5)


class TestVectorizedSampler:
    def test_deterministic_across_runs(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = MonteCarloPlan(
            rates=(0.01, 0.05), samples=200, seed=1, sampler="vectorized"
        )
        first = run_monte_carlo(analysis, plan)
        second = run_monte_carlo(analysis, plan)
        assert first["records"] == second["records"]

    def test_backend_independent_stream(self):
        """The vectorized sampler never touches kernel state, so the
        same plan gives the same mean on every backend."""
        network, spec = _build(11)
        plan = MonteCarloPlan(
            rates=(0.1,), samples=64, seed=5, sampler="vectorized",
            bootstrap=0,
        )
        means = []
        for backend in ("bitset", "ir", "dict"):
            analysis = GraphDamageAnalysis(network, spec, backend=backend)
            means.append(
                run_monte_carlo(analysis, plan)["records"][0]["mean_damage"]
            )
        assert means[0] == means[1] == means[2]

    def test_bootstrap_ci_deterministic_and_ordered(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = MonteCarloPlan(
            rates=(0.05,), samples=100, seed=3, bootstrap=100
        )
        rec1 = run_monte_carlo(analysis, plan)["records"][0]
        rec2 = run_monte_carlo(analysis, plan)["records"][0]
        assert (rec1["ci_low"], rec1["ci_high"]) == (
            rec2["ci_low"],
            rec2["ci_high"],
        )
        assert rec1["ci_low"] <= rec1["mean_damage"] <= rec1["ci_high"]

    def test_hardened_units_excluded(self):
        """Hardening every unit removes those sites; rate 1.0 then only
        faults the remaining primitives."""
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        all_sites = run_monte_carlo(
            analysis,
            MonteCarloPlan(rates=(1.0,), samples=8, seed=0, bootstrap=0),
        )
        hardened = run_monte_carlo(
            analysis,
            MonteCarloPlan(
                rates=(1.0,),
                samples=8,
                seed=0,
                bootstrap=0,
                hardened_units=tuple(network.unit_names()),
            ),
        )
        assert hardened["n_sites"] < all_sites["n_sites"]


class TestCheckpointResume:
    def _plan(self, sampler):
        return MonteCarloPlan(
            rates=(0.02, 0.1),
            samples=96,
            seed=4,
            sampler=sampler,
            block_lanes=16,
            bootstrap=50,
        )

    @pytest.mark.parametrize("sampler", ["scalar", "vectorized"])
    def test_killed_campaign_resumes_bit_identical(self, tmp_path, sampler):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = self._plan(sampler)
        reference = run_monte_carlo(analysis, plan)
        assert reference["blocks_total"] > 4

        path = str(tmp_path / f"mc-{sampler}.jsonl")
        calls = {"n": 0}

        # "Kill" the campaign by cancelling after three computed blocks.
        def cancelled():
            return calls["n"] >= 3

        def progress(fraction):
            calls["n"] += 1

        partial = run_monte_carlo(
            analysis,
            plan,
            checkpoint_path=path,
            progress=progress,
            cancelled=cancelled,
        )
        assert partial["outcome"] == "cancelled"
        assert 0 < partial["blocks_completed"] < reference["blocks_total"]

        resumed = run_monte_carlo(analysis, plan, checkpoint_path=path)
        assert resumed["outcome"] == "completed"
        assert resumed["blocks_resumed"] == partial["blocks_completed"]
        assert resumed["records"] == reference["records"]

    def test_no_resume_recomputes(self, tmp_path):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = self._plan("vectorized")
        path = str(tmp_path / "mc.jsonl")
        first = run_monte_carlo(analysis, plan, checkpoint_path=path)
        fresh = run_monte_carlo(
            analysis, plan, checkpoint_path=path, resume=False
        )
        assert fresh["blocks_resumed"] == 0
        assert fresh["records"] == first["records"]

    def test_plan_change_invalidates_checkpoint(self, tmp_path):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        path = str(tmp_path / "mc.jsonl")
        run_monte_carlo(
            analysis, self._plan("vectorized"), checkpoint_path=path
        )
        other = MonteCarloPlan(
            rates=(0.02, 0.1),
            samples=96,
            seed=5,  # different seed -> different campaign key
            sampler="vectorized",
            block_lanes=16,
            bootstrap=50,
        )
        rerun = run_monte_carlo(analysis, other, checkpoint_path=path)
        assert rerun["blocks_resumed"] == 0

    def test_progress_reaches_one(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        fractions = []
        run_monte_carlo(
            analysis, self._plan("vectorized"), progress=fractions.append
        )
        assert fractions[-1] == 1.0
        assert fractions == sorted(fractions)
