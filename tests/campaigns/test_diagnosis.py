"""Diagnosis campaign tests: packed-matrix ranking parity against the
scalar per-fault loop, effect-signature parity across backends, packing
round-trips, ambiguity statistics and checkpoint/resume determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.faults import fault_sort_key, iter_all_faults
from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench import build_design
from repro.bench.generators import fig1_example, random_network
from repro.campaigns import (
    DiagnosisPlan,
    SignatureMatrix,
    effect_signature_matrix,
    jaccard_rank_scalar,
    run_diagnosis,
    sequence_signature_matrix,
)
from repro.campaigns.signatures import _pack_rows
from repro.rsn.ast import elaborate
from repro.spec import random_spec, spec_for_network

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _matrix_sets(matrix):
    """Set-form signatures recovered from the packed matrix."""
    return {
        fault: frozenset(
            label
            for label, bit in zip(matrix.labels, matrix._bits[row])
            if bit
        )
        for row, fault in enumerate(matrix.faults)
    }


class TestPacking:
    def test_pack_rows_popcounts(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((17, 150)) < 0.3).astype(np.uint8)
        words = _pack_rows(bits)
        assert words.shape == (17, 3)  # ceil(150 / 64)
        popcounts = np.array(
            [bin(int(w)).count("1") for row in words for w in row]
        ).reshape(17, 3)
        assert (popcounts.sum(axis=1) == bits.sum(axis=1)).all()

    def test_unknown_positions_count_into_union_only(self):
        network = fig1_example()
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        sets = _matrix_sets(matrix)
        fault = matrix.faults[0]
        observed = set(sets[fault]) | {("unobs", "no-such-primitive")}
        bits, sizes, unknown = matrix.pack_observations([observed])
        assert unknown[0] == 1
        assert sizes[0] == len(observed)
        # The foreign position shrinks every score (bigger union).
        batched = matrix.rank([observed], top=len(matrix))[0]
        scalar = jaccard_rank_scalar(sets, observed, top=len(matrix))
        assert batched == scalar


class TestBatchedScalarParity:
    @settings(deadline=None, max_examples=10)
    @given(seed=seeds, obs_seed=st.integers(0, 10_000))
    def test_rank_matches_scalar_loop(self, seed, obs_seed):
        network, spec = _build(seed)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        sets = _matrix_sets(matrix)
        rng = np.random.default_rng(obs_seed)
        observations = []
        for _ in range(5):
            truth = matrix.faults[int(rng.integers(0, len(matrix)))]
            observed = {
                pos for pos in sets[truth] if rng.random() > 0.2
            }
            observations.append(observed)
        batched = matrix.rank(observations, top=len(matrix))
        for observed, ranking in zip(observations, batched):
            assert ranking == jaccard_rank_scalar(
                sets, observed, top=len(matrix)
            )

    def test_row_order_is_structural(self):
        network, spec = _build(1)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        keys = [fault_sort_key(f) for f in matrix.faults]
        assert keys == sorted(keys)

    def test_empty_observation_scores(self):
        """Empty-vs-empty is a perfect match (score 1.0); empty-vs-
        non-empty scores 0 — same as the scalar set arithmetic."""
        network, spec = _build(2)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        sets = _matrix_sets(matrix)
        assert matrix.rank([frozenset()], top=len(matrix))[
            0
        ] == jaccard_rank_scalar(sets, frozenset(), top=len(matrix))


class TestEffectSignatures:
    @settings(deadline=None, max_examples=8)
    @given(seed=seeds)
    def test_kernel_effects_match_scalar_backend(self, seed):
        """The lane-packed ``fault_effect_bits`` path (bitset) and the
        per-fault ``effect_of_fault`` path (ir) build identical
        matrices."""
        network, spec = _build(seed)
        bitset = effect_signature_matrix(
            GraphDamageAnalysis(network, spec, backend="bitset")
        )
        scalar = effect_signature_matrix(
            GraphDamageAnalysis(network, spec, backend="ir")
        )
        assert bitset.faults == scalar.faults
        assert bitset.labels == scalar.labels
        assert (bitset._bits == scalar._bits).all()

    def test_effects_match_effect_of_fault(self):
        network, spec = _build(4)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        sets = _matrix_sets(matrix)
        for fault in list(iter_all_faults(network))[:20]:
            effect = analysis.effect_of_fault(fault)
            expected = {("unobs", n) for n in effect.unobservable} | {
                ("unset", n) for n in effect.unsettable
            }
            assert sets[fault] == expected

    def test_sequence_matrix_on_fig1(self):
        network = fig1_example()
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = sequence_signature_matrix(analysis)
        assert len(matrix) == len(list(iter_all_faults(network)))


class TestAmbiguity:
    def test_groups_sorted_and_disjoint(self):
        network, spec = _build(6)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        groups = matrix.ambiguity_groups()
        sizes = [len(g) for g in groups]
        assert sizes == sorted(sizes, reverse=True)
        assert all(size > 1 for size in sizes)
        seen = set()
        for group in groups:
            for fault in group:
                assert fault not in seen
                seen.add(fault)
        assert 0.0 <= matrix.resolution() <= 1.0

    def test_resolution_accounts_for_groups(self):
        network, spec = _build(6)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        detected = int((matrix.sizes > 0).sum())
        ambiguous = sum(len(g) for g in matrix.ambiguity_groups())
        assert matrix.resolution() == (detected - ambiguous) / detected


class TestCampaign:
    def test_summary_fields_and_determinism(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = DiagnosisPlan(observations=90, seed=0, block_lanes=32)
        first = run_diagnosis(analysis, plan)
        second = run_diagnosis(analysis, plan)
        assert first["summary"] == second["summary"]
        summary = first["summary"]
        assert summary["observations_evaluated"] == 90
        assert 0.0 <= summary["rank1_accuracy"] <= summary[
            "topk_accuracy"
        ] <= 1.0
        assert first["examples"]  # block 0 carries worked examples

    def test_noiseless_observations_rank_truth_by_resolution(self):
        """With no noise, rank-1 accuracy is bounded below by the
        resolution: a uniquely-signed truth always ranks first."""
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        result = run_diagnosis(
            analysis, DiagnosisPlan(observations=200, seed=1)
        )
        assert (
            result["summary"]["rank1_accuracy"]
            >= matrix.resolution() - 1e-12
        )

    def test_noise_plan_deterministic(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = DiagnosisPlan(observations=64, seed=2, noise=0.3)
        assert (
            run_diagnosis(analysis, plan)["summary"]
            == run_diagnosis(analysis, plan)["summary"]
        )

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = DiagnosisPlan(observations=96, seed=3, block_lanes=16)
        reference = run_diagnosis(analysis, plan)
        assert reference["blocks_total"] == 6

        path = str(tmp_path / "diag.jsonl")
        computed = {"n": 0}

        def cancelled():
            return computed["n"] >= 2

        def progress(fraction):
            computed["n"] += 1

        partial = run_diagnosis(
            analysis,
            plan,
            checkpoint_path=path,
            progress=progress,
            cancelled=cancelled,
        )
        assert partial["outcome"] == "cancelled"
        resumed = run_diagnosis(analysis, plan, checkpoint_path=path)
        assert resumed["outcome"] == "completed"
        assert resumed["blocks_resumed"] == partial["blocks_completed"]
        assert resumed["summary"] == reference["summary"]

    def test_shared_matrix_short_circuit(self):
        network = build_design("TreeFlat")
        spec = spec_for_network(network, seed=0)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        matrix = effect_signature_matrix(analysis)
        plan = DiagnosisPlan(observations=30, seed=0)
        direct = run_diagnosis(analysis, plan)
        shared = run_diagnosis(analysis, plan, matrix=matrix)
        assert shared["summary"] == direct["summary"]
