"""Exhaustive k-fault campaign tests.

Parity against ``damage_of_fault_sets`` over the full enumeration on
series-parallel *and* non-series-parallel networks, lane-block
boundaries at 63/64/65 combinations, budgets, and checkpoint/resume
bit-identity.
"""

import math
import random
from itertools import combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.graph_analysis import GraphDamageAnalysis
from repro.bench import build_design
from repro.bench.generators import random_network
from repro.campaigns import KFaultPlan, fault_universe, run_k_fault
from repro.rsn.ast import elaborate
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, SegmentRole
from repro.spec import random_spec, spec_for_network

seeds = st.integers(min_value=0, max_value=50_000)


def _build(seed):
    network = elaborate(random_network(seed=seed, max_depth=2, max_items=3))
    spec = random_spec(network.instrument_names(), seed=seed)
    return network, spec


def _build_bridge(seed):
    """A seeded non-series-parallel (Wheatstone) network."""
    rng = random.Random(seed)
    net = RsnNetwork(f"bridge{seed}")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment(
        "sel1", length=rng.randint(1, 2), role=SegmentRole.CONTROL
    )
    net.add_fanout("f1")
    net.add_segment("a", length=rng.randint(1, 4), instrument="ia")
    net.add_segment("b", length=rng.randint(1, 4), instrument="ib")
    net.add_fanout("fa")
    net.add_mux("m1", fanin=2, control_cell="sel1")
    net.add_mux("m2", fanin=2, control_cell="sel1")
    for edge in [
        ("scan_in", "sel1"), ("sel1", "f1"), ("f1", "a"), ("f1", "b"),
        ("a", "fa"), ("fa", "m1"), ("b", "m1"), ("m1", "m2"), ("fa", "m2"),
    ]:
        net.add_edge(*edge)
    net.add_segment("tail0", length=2, instrument="it0")
    net.add_edge("m2", "tail0")
    net.add_edge("tail0", "scan_out")
    net.register_unit(
        ControlUnit("unit.sel1", muxes=["m1", "m2"], cells=["sel1"])
    )
    net.validate()
    spec = random_spec(net.instrument_names(), seed=seed)
    return net, spec


def _direct(analysis, universe, k):
    combos = list(combinations(universe, k))
    return combos, analysis.damage_of_fault_sets(combos)


class TestParity:
    @settings(deadline=None, max_examples=10)
    @given(seed=seeds, bridge=st.booleans())
    def test_full_enumeration_matches_direct(self, seed, bridge):
        network, spec = (
            _build_bridge(seed) if bridge else _build(seed)
        )
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        universe = fault_universe(network, "all")
        combos, direct = _direct(analysis, universe, 2)
        result = run_k_fault(analysis, KFaultPlan(k=2, top=10))
        summary = result["summary"]
        assert summary["combinations_evaluated"] == len(combos)
        assert summary["max_damage"] == (max(direct) if direct else 0.0)
        assert summary["mean_damage"] == (
            sum(direct) / len(direct) if direct else 0.0
        )
        # Worst retained combination carries the true maximum.
        if summary["top"]:
            assert summary["top"][0]["damage"] == max(direct)

    def test_site_filters(self):
        network = build_design("TreeFlat")
        assert len(fault_universe(network, "segments")) + len(
            fault_universe(network, "muxes")
        ) == len(fault_universe(network, "all"))

    def test_k1_matches_single_fault_damages(self):
        network, spec = _build(7)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        universe = fault_universe(network, "all")
        singles = analysis.damage_of_fault_sets([(f,) for f in universe])
        result = run_k_fault(analysis, KFaultPlan(k=1, top=5))
        assert result["summary"]["max_damage"] == max(singles)


class TestBlockBoundaries:
    @pytest.mark.parametrize("block_lanes", [63, 64, 65])
    def test_boundary_block_sizes_identical(self, block_lanes):
        """Results are invariant when blocks split exactly at, just
        below, and just above the 64-lane word boundary."""
        network, spec = _build(3)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        baseline = run_k_fault(analysis, KFaultPlan(k=2, top=8))
        result = run_k_fault(
            analysis, KFaultPlan(k=2, top=8, block_lanes=block_lanes)
        )
        assert result["summary"] == baseline["summary"]

    def test_exact_63_64_65_combination_counts(self):
        """Universes sized so C(n, 2) lands on 63/66/64-ish block edges:
        cap the enumeration to exactly 63, 64 and 65 combinations and
        check each against the direct prefix."""
        network, spec = _build(9)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        universe = fault_universe(network, "all")
        total = math.comb(len(universe), 2)
        combos, direct = _direct(analysis, universe, 2)
        for cap in (63, 64, 65):
            if cap > total:
                pytest.skip("universe too small for the boundary caps")
            result = run_k_fault(
                analysis,
                KFaultPlan(
                    k=2, top=5, max_combinations=cap, block_lanes=64
                ),
            )
            summary = result["summary"]
            prefix = direct[:cap]
            assert summary["combinations_evaluated"] == cap
            assert summary["truncated"] == (cap < total)
            assert summary["max_damage"] == max(prefix)
            assert summary["mean_damage"] == sum(prefix) / cap


class TestBudgets:
    def test_time_budget_truncates(self):
        network, spec = _build(5)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        # One combination per block, and a deadline that expires before
        # the second block starts.
        result = run_k_fault(
            analysis,
            KFaultPlan(k=2, top=5, max_seconds=1e-9, block_lanes=1),
        )
        assert result["outcome"] == "truncated"
        assert result["summary"]["truncated"]
        assert "time budget" in result["truncated_reason"]

    def test_cardinality_budget_marks_truncated(self):
        network, spec = _build(5)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        result = run_k_fault(
            analysis, KFaultPlan(k=2, top=5, max_combinations=10)
        )
        assert result["summary"]["combinations_evaluated"] == 10
        assert result["summary"]["truncated"]
        assert result["outcome"] == "completed"


class TestCheckpointResume:
    def test_resume_bit_identical(self, tmp_path):
        network, spec = _build(13)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = KFaultPlan(k=2, top=8, block_lanes=16)
        reference = run_k_fault(analysis, plan)
        assert reference["blocks_total"] > 3

        path = str(tmp_path / "kfault.jsonl")
        computed = {"n": 0}

        def cancelled():
            return computed["n"] >= 2

        def progress(fraction):
            computed["n"] += 1

        partial = run_k_fault(
            analysis,
            plan,
            checkpoint_path=path,
            progress=progress,
            cancelled=cancelled,
        )
        assert partial["outcome"] == "cancelled"
        resumed = run_k_fault(analysis, plan, checkpoint_path=path)
        assert resumed["outcome"] == "completed"
        assert resumed["blocks_resumed"] == partial["blocks_completed"]
        assert resumed["summary"] == reference["summary"]

    def test_fully_checkpointed_run_replays_everything(self, tmp_path):
        network, spec = _build(13)
        analysis = GraphDamageAnalysis(network, spec, backend="bitset")
        plan = KFaultPlan(k=2, top=8, block_lanes=16)
        path = str(tmp_path / "kfault.jsonl")
        first = run_k_fault(analysis, plan, checkpoint_path=path)
        replay = run_k_fault(analysis, plan, checkpoint_path=path)
        assert replay["blocks_resumed"] == replay["blocks_total"]
        assert replay["summary"] == first["summary"]
