"""Unit tests for the hierarchical AST and its elaboration."""

import pytest

from repro.errors import BuilderError
from repro.rsn.ast import (
    ControlCellDecl,
    MuxDecl,
    NetworkDecl,
    SegmentDecl,
    SibDecl,
    elaborate,
)
from repro.rsn.primitives import NodeKind


def simple_decl():
    return NetworkDecl(
        "simple",
        [
            SegmentDecl("s1", length=2, instrument="i1"),
            SibDecl("sib", [SegmentDecl("s2", length=3, instrument="i2")]),
            ControlCellDecl("sel"),
            MuxDecl(
                "m",
                [[SegmentDecl("s3", length=1, instrument="i3")], []],
                control="sel",
            ),
        ],
    )


class TestDeclValidation:
    def test_sib_requires_children(self):
        with pytest.raises(BuilderError):
            SibDecl("empty", [])

    def test_mux_requires_two_branches(self):
        with pytest.raises(BuilderError):
            MuxDecl("m", [[SegmentDecl("s")]])

    def test_mux_requires_some_content(self):
        with pytest.raises(BuilderError):
            MuxDecl("m", [[], []])

    def test_equality_is_structural(self):
        assert simple_decl() == simple_decl()
        other = simple_decl()
        other.items[0].length = 99
        assert simple_decl() != other


class TestWalkAndCounts:
    def test_walk_is_scan_order(self):
        names = [
            item.name for item in simple_decl().walk()
        ]
        assert names == ["s1", "sib", "s2", "sel", "m", "s3"]

    def test_counts(self):
        assert simple_decl().counts() == (3, 2)

    def test_counts_of_nested_mux_branches(self):
        decl = NetworkDecl(
            "deep",
            [
                MuxDecl(
                    "m1",
                    [
                        [SibDecl("s", [SegmentDecl("a")])],
                        [SegmentDecl("b")],
                    ],
                )
            ],
        )
        assert decl.counts() == (2, 2)


class TestElaboration:
    def test_node_census(self):
        net = elaborate(simple_decl())
        kinds = {}
        for node in net.nodes():
            kinds[node.kind] = kinds.get(node.kind, 0) + 1
        assert kinds[NodeKind.SEGMENT] == 5  # s1 s2 s3 + sib.bit + sel
        assert kinds[NodeKind.MUX] == 2
        assert kinds[NodeKind.FANOUT] == 2

    def test_scan_path_connectivity(self):
        net = elaborate(simple_decl())
        net.validate()

    def test_sib_unit_registered(self):
        net = elaborate(simple_decl())
        unit = net.unit("sib")
        assert unit.is_sib
        assert unit.cells == ("sib.bit",)
        assert unit.muxes == ("sib.mux",)

    def test_shared_cell_unit_registered(self):
        net = elaborate(simple_decl())
        unit = net.unit("unit.sel")
        assert unit.muxes == ("m",)
        assert unit.cells == ("sel",)

    def test_empty_network_elaborates(self):
        net = elaborate(NetworkDecl("empty", []))
        assert net.successors(net.scan_in) == (net.scan_out,)

    def test_skip_validation_flag(self):
        decl = NetworkDecl(
            "bad",
            [MuxDecl("m", [[SegmentDecl("a")], []], control="ghost")],
        )
        net = elaborate(decl, validate=False)
        assert "m" in net
        with pytest.raises(Exception):
            net.validate()

    def test_mux_port_order_matches_branch_order(self):
        decl = NetworkDecl(
            "ports",
            [
                MuxDecl(
                    "m",
                    [
                        [SegmentDecl("b0")],
                        [],
                        [SegmentDecl("b2")],
                    ],
                )
            ],
        )
        net = elaborate(decl)
        preds = net.predecessors("m")
        assert preds[0] == "b0"
        assert net.node(preds[1]).kind is NodeKind.FANOUT
        assert preds[2] == "b2"
