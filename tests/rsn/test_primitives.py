"""Unit tests for the scan primitive value objects."""

import pytest

from repro.rsn.primitives import (
    ControlUnit,
    Fanout,
    Instrument,
    NodeKind,
    ScanMux,
    ScanPort,
    ScanSegment,
    SegmentRole,
)


class TestScanSegment:
    def test_defaults(self):
        seg = ScanSegment("s")
        assert seg.length == 1
        assert seg.instrument is None
        assert seg.role is SegmentRole.DATA
        assert seg.kind is NodeKind.SEGMENT

    def test_data_segment_with_instrument(self):
        seg = ScanSegment("s", length=8, instrument="temp")
        assert seg.hosts_instrument
        assert not seg.is_control

    def test_control_roles_are_control(self):
        assert ScanSegment("c", role=SegmentRole.CONTROL).is_control
        assert ScanSegment("c", role=SegmentRole.SIB).is_control

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            ScanSegment("s", length=0)

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ScanSegment("s", length=-3)

    def test_control_cell_cannot_host_instrument(self):
        with pytest.raises(ValueError):
            ScanSegment("c", instrument="x", role=SegmentRole.CONTROL)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScanSegment("")


class TestScanMux:
    def test_defaults(self):
        mux = ScanMux("m")
        assert mux.fanin == 2
        assert mux.kind is NodeKind.MUX
        assert not mux.is_sib_mux

    def test_stuck_values_enumerate_ports(self):
        assert ScanMux("m", fanin=3).stuck_values() == (0, 1, 2)

    def test_fanin_below_two_rejected(self):
        with pytest.raises(ValueError):
            ScanMux("m", fanin=1)

    def test_sib_mux_flag(self):
        mux = ScanMux("m", sib_of="sib1")
        assert mux.is_sib_mux
        assert mux.sib_of == "sib1"

    def test_sib_port_constants(self):
        assert ScanMux.SIB_BYPASS_PORT == 0
        assert ScanMux.SIB_HOSTED_PORT == 1


class TestScanPort:
    def test_scan_in(self):
        port = ScanPort("si", NodeKind.SCAN_IN)
        assert port.kind is NodeKind.SCAN_IN

    def test_scan_out(self):
        port = ScanPort("so", NodeKind.SCAN_OUT)
        assert port.kind is NodeKind.SCAN_OUT

    def test_other_kinds_rejected(self):
        with pytest.raises(ValueError):
            ScanPort("x", NodeKind.SEGMENT)


class TestFanout:
    def test_kind(self):
        assert Fanout("f").kind is NodeKind.FANOUT


class TestInstrument:
    def test_fields(self):
        inst = Instrument("temp", "seg1", description="thermal sensor")
        assert inst.name == "temp"
        assert inst.segment == "seg1"
        assert inst.description == "thermal sensor"


class TestControlUnit:
    def test_members_cells_first(self):
        unit = ControlUnit("u", muxes=["m"], cells=["c"])
        assert unit.members == ("c", "m")

    def test_sib_flag(self):
        unit = ControlUnit("s", muxes=["m"], cells=["b"], is_sib=True)
        assert unit.is_sib

    def test_unit_without_mux_rejected(self):
        with pytest.raises(ValueError):
            ControlUnit("u", muxes=[], cells=["c"])

    def test_multi_mux_unit(self):
        unit = ControlUnit("u", muxes=["m1", "m2"], cells=["c"])
        assert unit.muxes == ("m1", "m2")
