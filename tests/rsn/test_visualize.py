"""Unit tests for DOT export."""

from repro.rsn import network_to_dot, tree_to_dot
from repro.sp import decompose


class TestNetworkDot:
    def test_contains_all_nodes(self, fig1_network):
        source = network_to_dot(fig1_network)
        for name in fig1_network.node_names():
            if fig1_network.node(name).kind.value != "fanout":
                assert name in source
        assert source.startswith("digraph")
        assert source.rstrip().endswith("}")

    def test_mux_edges_carry_port_labels(self, fig1_network):
        source = network_to_dot(fig1_network)
        assert 'label="0"' in source
        assert 'label="1"' in source

    def test_highlight_units(self, fig1_network):
        source = network_to_dot(fig1_network, highlight=["unit.m0.sel"])
        assert "fillcolor" in source

    def test_instrument_annotation(self, fig1_network):
        assert "(i1)" in network_to_dot(fig1_network)


class TestTreeDot:
    def test_series_parallel_markers(self, fig1_network):
        source = tree_to_dot(decompose(fig1_network))
        assert 'label="S"' in source
        assert 'label="P"' in source
        assert '"m0"' in source

    def test_node_cap(self, fig1_network):
        source = tree_to_dot(decompose(fig1_network), max_nodes=3)
        assert '"..."' in source


class TestCliDot:
    def test_dot_command(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "net.dot"
        assert main(["dot", "TreeFlat", "--output", str(out)]) == 0
        assert out.read_text().startswith("digraph")

    def test_dot_tree_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["dot", "TreeFlat", "--tree"]) == 0
        assert "digraph decomposition" in capsys.readouterr().out
