"""Unit and property tests for the textual network format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bench.generators import random_network
from repro.errors import IclFormatError
from repro.rsn import icl
from repro.rsn.ast import (
    ControlCellDecl,
    MuxDecl,
    NetworkDecl,
    SegmentDecl,
    SibDecl,
)

EXAMPLE = """\
network demo
  segment temp0 length=8 instrument=temp_sensor
  sib core_sib
    segment bist length=16 instrument=mbist
  control cfg0 length=1
  mux m0 control=cfg0
    branch
      segment dbg length=4 instrument=debug
    branch
"""


class TestLoads:
    def test_example_parses(self):
        decl = icl.loads(EXAMPLE)
        assert decl.name == "demo"
        assert decl.counts() == (3, 2)

    def test_comments_and_blank_lines_ignored(self):
        text = "# header\n\nnetwork x\n  segment s  # trailing\n"
        decl = icl.loads(text)
        assert decl.items == [SegmentDecl("s", length=1)]

    def test_defaults(self):
        decl = icl.loads("network x\n  segment s\n")
        assert decl.items[0].length == 1
        assert decl.items[0].instrument is None

    def test_empty_input_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("")

    def test_missing_network_header_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("segment s\n")

    def test_bad_indentation_rejected(self):
        with pytest.raises(IclFormatError) as excinfo:
            icl.loads("network x\n   segment s\n")
        assert excinfo.value.line == 2

    def test_tabs_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n\tsegment s\n")

    def test_unknown_keyword_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  gizmo g\n")

    def test_unknown_option_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  segment s width=3\n")

    def test_non_integer_length_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  segment s length=wide\n")

    def test_duplicate_option_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  segment s length=1 length=2\n")

    def test_empty_sib_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  sib s\n  segment t\n")

    def test_single_branch_mux_rejected(self):
        text = "network x\n  mux m\n    branch\n      segment s\n"
        with pytest.raises(IclFormatError):
            icl.loads(text)

    def test_branch_with_name_rejected(self):
        text = (
            "network x\n  mux m\n    branch b\n      segment s\n"
            "    branch\n"
        )
        with pytest.raises(IclFormatError):
            icl.loads(text)

    def test_nameless_segment_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n  segment\n")

    def test_over_indentation_rejected(self):
        with pytest.raises(IclFormatError):
            icl.loads("network x\n    segment s\n")


class TestDumps:
    def test_example_roundtrip(self):
        decl = icl.loads(EXAMPLE)
        assert icl.loads(icl.dumps(decl)) == decl

    def test_dump_format_is_stable(self):
        decl = icl.loads(EXAMPLE)
        assert icl.dumps(decl) == icl.dumps(icl.loads(icl.dumps(decl)))

    def test_nested_structures(self):
        decl = NetworkDecl(
            "nested",
            [
                SibDecl(
                    "outer",
                    [
                        MuxDecl(
                            "m",
                            [[SegmentDecl("a")], []],
                        ),
                        ControlCellDecl("c", length=2),
                    ],
                )
            ],
        )
        assert icl.loads(icl.dumps(decl)) == decl

    def test_file_roundtrip(self, tmp_path):
        decl = icl.loads(EXAMPLE)
        path = tmp_path / "net.rsn"
        icl.dump(decl, path)
        assert icl.load(path) == decl


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_random_networks_roundtrip(seed):
    """dumps/loads is the identity on arbitrary generated descriptions."""
    decl = random_network(seed=seed)
    assert icl.loads(icl.dumps(decl)) == decl
