"""Unit tests for the fluent hierarchical builder."""

import pytest

from repro.errors import BuilderError
from repro.rsn import RsnBuilder, sib_bit_name, sib_mux_name
from repro.rsn.ast import SegmentDecl, SibDecl
from repro.rsn.primitives import NodeKind, SegmentRole


class TestSegments:
    def test_explicit_names_and_instruments(self):
        builder = RsnBuilder()
        decl = builder.segment("s", length=4, instrument="temp")
        assert decl == SegmentDecl("s", length=4, instrument="temp")

    def test_auto_names_are_unique(self):
        builder = RsnBuilder()
        first = builder.segment()
        second = builder.segment()
        assert first.name != second.name

    def test_instrument_true_autoderives_name(self):
        builder = RsnBuilder()
        decl = builder.segment("core", instrument=True)
        assert decl.instrument == "i_core"

    def test_duplicate_name_rejected(self):
        builder = RsnBuilder()
        builder.segment("s")
        with pytest.raises(BuilderError):
            builder.segment("s")

    def test_duplicate_across_kinds_rejected(self):
        builder = RsnBuilder()
        builder.segment("x")
        with pytest.raises(BuilderError):
            builder.control_cell("x")


class TestSib:
    def test_sib_collects_children(self):
        builder = RsnBuilder()
        with builder.sib("s0"):
            builder.segment("inner")
        ast = builder.ast()
        assert isinstance(ast.items[0], SibDecl)
        assert ast.items[0].children[0].name == "inner"

    def test_empty_sib_rejected(self):
        builder = RsnBuilder()
        with pytest.raises(BuilderError):
            with builder.sib("s0"):
                pass

    def test_nested_sibs(self):
        builder = RsnBuilder()
        with builder.sib("outer"):
            with builder.sib("inner"):
                builder.segment("deep")
        net = builder.build()
        assert sib_mux_name("outer") in net
        assert sib_bit_name("inner") in net

    def test_elaborated_sib_structure(self):
        builder = RsnBuilder()
        with builder.sib("s0"):
            builder.segment("inner")
        net = builder.build()
        bit = net.node(sib_bit_name("s0"))
        mux = net.node(sib_mux_name("s0"))
        assert bit.role is SegmentRole.SIB
        assert mux.control_cell == bit.name
        assert mux.sib_of == "s0"
        # port 0 is the bypass (a fanout), port 1 the hosted chain tail
        preds = net.predecessors(mux.name)
        assert net.node(preds[0]).kind is NodeKind.FANOUT
        assert preds[1] == "inner"


class TestMux:
    def test_branches_in_declaration_order(self):
        builder = RsnBuilder()
        with builder.mux("m") as mux:
            with mux.branch():
                builder.segment("first")
            with mux.branch():
                builder.segment("second")
        net = builder.build()
        assert net.predecessors("m") == ("first", "second")

    def test_bypass_branch_allowed(self):
        builder = RsnBuilder()
        with builder.mux("m") as mux:
            with mux.branch():
                builder.segment("only")
            with mux.branch():
                pass
        net = builder.build()
        preds = net.predecessors("m")
        assert preds[0] == "only"
        assert net.node(preds[1]).kind is NodeKind.FANOUT

    def test_single_branch_rejected(self):
        builder = RsnBuilder()
        with pytest.raises(BuilderError):
            with builder.mux("m") as mux:
                with mux.branch():
                    builder.segment("only")

    def test_all_bypass_branches_rejected(self):
        builder = RsnBuilder()
        with pytest.raises(BuilderError):
            with builder.mux("m") as mux:
                with mux.branch():
                    pass
                with mux.branch():
                    pass

    def test_dedicated_select_cell_elaborated(self):
        builder = RsnBuilder()
        with builder.mux("m") as mux:
            with mux.branch():
                builder.segment("a")
            with mux.branch():
                builder.segment("b")
        net = builder.build()
        assert net.node("m").control_cell == "m.sel"
        assert net.node("m.sel").is_control

    def test_three_branch_mux_gets_two_bit_select(self):
        builder = RsnBuilder()
        with builder.mux("m") as mux:
            for name in ("a", "b", "c"):
                with mux.branch():
                    builder.segment(name)
        net = builder.build()
        assert net.node("m.sel").length == 2

    def test_shared_control_cell(self):
        builder = RsnBuilder()
        builder.control_cell("sel")
        for mux_name in ("m1", "m2"):
            with builder.mux(mux_name, control="sel") as mux:
                with mux.branch():
                    builder.segment(f"{mux_name}_a")
                with mux.branch():
                    pass
        net = builder.build()
        unit = net.unit("unit.sel")
        assert set(unit.muxes) == {"m1", "m2"}

    def test_unknown_control_cell_fails_validation(self):
        builder = RsnBuilder()
        with builder.mux("m", control="ghost") as mux:
            with mux.branch():
                builder.segment("a")
            with mux.branch():
                pass
        with pytest.raises(Exception):
            builder.build()


class TestBuild:
    def test_counts_match_declarations(self):
        builder = RsnBuilder()
        builder.segment("s1")
        with builder.sib("sib"):
            builder.segment("s2")
        with builder.mux("m") as mux:
            with mux.branch():
                builder.segment("s3")
            with mux.branch():
                pass
        net = builder.build()
        assert net.counts() == (3, 2)

    def test_build_validates_by_default(self):
        builder = RsnBuilder()
        builder.segment("s")
        net = builder.build()
        net.validate()  # must not raise

    def test_ast_roundtrip_counts(self):
        builder = RsnBuilder("x")
        builder.segment("s1", instrument=True)
        with builder.sib("sib"):
            builder.segment("s2")
        assert builder.ast().counts() == (2, 1)

    def test_unbalanced_scopes_detected(self):
        builder = RsnBuilder()
        ctx = builder.sib("s")
        ctx.__enter__()
        builder.segment("inner")
        with pytest.raises(BuilderError):
            builder.ast()
