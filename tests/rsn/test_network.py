"""Unit tests for the RSN graph container and its validation."""

import pytest

from repro.errors import (
    DuplicateNameError,
    UnknownNodeError,
    ValidationError,
)
from repro.rsn.network import RsnNetwork
from repro.rsn.primitives import ControlUnit, SegmentRole


def minimal_network():
    net = RsnNetwork("minimal")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment("s", length=2, instrument="i")
    net.add_edge("scan_in", "s")
    net.add_edge("s", "scan_out")
    return net


def mux_network():
    net = RsnNetwork("muxed")
    net.add_scan_in()
    net.add_scan_out()
    net.add_segment("sel", role=SegmentRole.CONTROL)
    net.add_fanout("f")
    net.add_segment("a", instrument="ia")
    net.add_segment("b", instrument="ib")
    net.add_mux("m", fanin=2, control_cell="sel")
    net.add_edge("scan_in", "sel")
    net.add_edge("sel", "f")
    net.add_edge("f", "a")
    net.add_edge("f", "b")
    net.add_edge("a", "m")
    net.add_edge("b", "m")
    net.add_edge("m", "scan_out")
    return net


class TestConstruction:
    def test_minimal_network_validates(self):
        minimal_network().validate()

    def test_mux_network_validates(self):
        mux_network().validate()

    def test_duplicate_node_name_rejected(self):
        net = RsnNetwork()
        net.add_segment("s")
        with pytest.raises(DuplicateNameError):
            net.add_segment("s")

    def test_duplicate_instrument_rejected(self):
        net = RsnNetwork()
        net.add_segment("s1", instrument="i")
        with pytest.raises(DuplicateNameError):
            net.add_segment("s2", instrument="i")

    def test_second_scan_in_rejected(self):
        net = RsnNetwork()
        net.add_scan_in()
        with pytest.raises(DuplicateNameError):
            net.add_scan_in("another")

    def test_edge_to_unknown_node_rejected(self):
        net = RsnNetwork()
        net.add_segment("s")
        with pytest.raises(UnknownNodeError):
            net.add_edge("s", "ghost")

    def test_contains_and_len(self):
        net = minimal_network()
        assert "s" in net
        assert "ghost" not in net
        assert len(net) == 3


class TestQueries:
    def test_counts_exclude_control_segments(self):
        net = mux_network()
        assert net.counts() == (2, 1)

    def test_total_bits(self):
        net = mux_network()
        assert net.total_bits() == 3  # sel + a + b, one bit each

    def test_mux_port(self):
        net = mux_network()
        assert net.mux_port("m", "a") == 0
        assert net.mux_port("m", "b") == 1

    def test_mux_port_unknown_source(self):
        net = mux_network()
        with pytest.raises(UnknownNodeError):
            net.mux_port("m", "sel")

    def test_instrument_lookup(self):
        net = minimal_network()
        assert net.instrument("i").segment == "s"
        with pytest.raises(UnknownNodeError):
            net.instrument("nope")

    def test_segment_role_iterators(self):
        net = mux_network()
        assert {s.name for s in net.data_segments()} == {"a", "b"}
        assert {s.name for s in net.control_segments()} == {"sel"}

    def test_topological_order_respects_edges(self):
        net = mux_network()
        order = net.topological_order()
        assert order.index("scan_in") < order.index("sel")
        assert order.index("a") < order.index("m")
        assert order.index("m") < order.index("scan_out")

    def test_edges_iterates_multiplicity(self):
        net = mux_network()
        assert len(list(net.edges())) == 7


class TestUnits:
    def test_register_and_lookup(self):
        net = mux_network()
        unit = ControlUnit("u", muxes=["m"], cells=["sel"])
        net.register_unit(unit)
        assert net.unit("u") is unit
        assert net.unit_of("m") is unit
        assert net.unit_of("sel") is unit
        assert net.unit_of("a") is None

    def test_duplicate_unit_rejected(self):
        net = mux_network()
        net.register_unit(ControlUnit("u", muxes=["m"], cells=[]))
        with pytest.raises(DuplicateNameError):
            net.register_unit(ControlUnit("u", muxes=["m"], cells=[]))

    def test_unit_with_unknown_member_rejected(self):
        net = mux_network()
        with pytest.raises(UnknownNodeError):
            net.register_unit(ControlUnit("u", muxes=["ghost"], cells=[]))


class TestValidation:
    def test_missing_ports_reported(self):
        net = RsnNetwork()
        with pytest.raises(ValidationError) as excinfo:
            net.validate()
        assert any("scan-in" in p for p in excinfo.value.problems)

    def test_dangling_segment_reported(self):
        net = minimal_network()
        net.add_segment("dangling")
        with pytest.raises(ValidationError):
            net.validate()

    def test_cycle_detected(self):
        net = RsnNetwork()
        net.add_scan_in()
        net.add_scan_out()
        net.add_segment("s1")
        net.add_segment("s2")
        net.add_edge("scan_in", "s1")
        # s1 <-> s2 cycle
        net.add_edge("s1", "s2")
        net.add_edge("s2", "s1")
        net.add_edge("s2", "scan_out")
        with pytest.raises(ValidationError):
            net.validate()

    def test_mux_fanin_mismatch_reported(self):
        net = RsnNetwork()
        net.add_scan_in()
        net.add_scan_out()
        net.add_mux("m", fanin=3)
        net.add_segment("a")
        net.add_segment("b")
        net.add_fanout("f")
        net.add_edge("scan_in", "f")
        net.add_edge("f", "a")
        net.add_edge("f", "b")
        net.add_edge("a", "m")
        net.add_edge("b", "m")
        net.add_edge("m", "scan_out")
        with pytest.raises(ValidationError) as excinfo:
            net.validate()
        assert any("fanin" in p for p in excinfo.value.problems)

    def test_mux_bad_control_cell_reported(self):
        net = mux_network()
        net.node("m").control_cell = "a"  # a data segment
        with pytest.raises(ValidationError) as excinfo:
            net.validate()
        assert any("control cell" in p for p in excinfo.value.problems)

    def test_unreachable_from_scan_in_reported(self):
        net = minimal_network()
        net.add_segment("orphan")
        net.add_edge("orphan", "scan_out")
        with pytest.raises(ValidationError) as excinfo:
            net.validate()
        assert any("unreachable" in p for p in excinfo.value.problems)


class TestExport:
    def test_to_networkx_preserves_structure(self):
        nx_graph = mux_network().to_networkx()
        assert nx_graph.number_of_nodes() == 7
        assert nx_graph.number_of_edges() == 7
        assert nx_graph.nodes["a"]["instrument"] == "ia"
        assert nx_graph.nodes["m"]["kind"] == "mux"
